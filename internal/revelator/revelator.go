// Package revelator implements a Revelator-style speculative translation
// scheme (see PAPERS.md): system software maintains a physically backed
// open-addressing hash table of translations (BLAKE2 at the paper-standard
// 0.6 load factor, as in internal/hashpt), and the hardware resolves an L2
// TLB miss by probing it — usually a single dependent memory request. The
// CPU proceeds with the data access on that speculative translation while a
// conventional radix walk *verifies* it in the background; the verify walk
// rides the mmu verify region, so its latency is charged as max(verify,
// access) rather than added to the critical path.
//
// The OS keeps the hash table and the radix table coherent (every map,
// unmap, and permission change updates both), so speculation never
// misresolves in this model; what remains of the radix walk is its cache
// traffic and its overlapped latency — the cost the scheme pays for being
// architecturally safe. Unmapped addresses miss the hash chain and are
// confirmed by the OS fault path, with no verify walk to overlap.
package revelator

import (
	"fmt"

	"lvm/internal/addr"
	"lvm/internal/blake2b"
	"lvm/internal/metrics"
	"lvm/internal/mmu"
	"lvm/internal/phys"
	"lvm/internal/pte"
	"lvm/internal/radix"
	"lvm/internal/stats"
)

// LoadFactor is the table's target occupancy at build time (the paper's
// hashed-baseline configuration). Dynamic growth may exceed it — probe
// chains lengthen gracefully — but the initial sizing leaves the headroom.
const LoadFactor = 0.6

// slot states: open addressing with tombstones, so unmap keeps later chain
// members reachable. Inserts reuse the first tombstone on their probe path.
const (
	slotEmpty uint8 = iota
	slotLive
	slotDead
)

// Table is one process's Revelator state: the physically backed speculative
// hash table plus the authoritative radix table the verify walks traverse.
// Both are updated on every OS mutation, so they always agree.
type Table struct {
	mem   *phys.Memory
	Radix *radix.Table

	// slots/state mirror the hash region's contents; base/order anchor it
	// in simulated physical memory so every probe has a real PA.
	slots []pte.Tagged
	state []uint8
	base  addr.PPN
	order int
	mask  uint64
	live  int
}

// New creates a table sized so the expected mapping count lands at
// LoadFactor occupancy (minimum 1024 slots).
func New(mem *phys.Memory, expected int) (*Table, error) {
	rt, err := radix.New(mem)
	if err != nil {
		return nil, err
	}
	n := 1024
	for float64(n)*LoadFactor < float64(expected) {
		n *= 2
	}
	order := phys.OrderForBytes(uint64(n) * pte.TaggedBytes)
	base, err := mem.Alloc(order)
	if err != nil {
		rt.Release()
		return nil, fmt.Errorf("revelator: allocating hash table: %w", err)
	}
	return &Table{
		mem:   mem,
		Radix: rt,
		slots: make([]pte.Tagged, n),
		state: make([]uint8, n),
		base:  base,
		order: order,
		mask:  uint64(n - 1),
	}, nil
}

func (t *Table) home(tag addr.VPN) uint64 {
	return blake2b.Sum64(uint64(tag)) & t.mask
}

func (t *Table) slotPA(i uint64) addr.PA {
	return addr.SlotPA(t.base, i, pte.TaggedBytes)
}

// probeSizes orders the per-size probe chains, 4 KB first (mirroring
// hashpt.Lookup). A fixed array, not a literal in the hot path.
var probeSizes = [3]addr.PageSize{addr.Page4K, addr.Page2M, addr.Page1G}

// lookup resolves v by probing the chain for each page size, 4 KB first.
// When b is non-nil each probed slot is appended as its own sequential
// group — the probes are dependent loads, and the chain's PAs are what the
// timing walk charges to the caches.
func (t *Table) lookup(b *mmu.WalkBuf, v addr.VPN) (pte.Entry, bool) {
	for _, s := range probeSizes {
		tag := addr.AlignDown(v, s)
		h := t.home(tag)
		for d := uint64(0); d < uint64(len(t.slots)); d++ {
			i := (h + d) & t.mask
			if b != nil {
				b.AddGroup(t.slotPA(i))
			}
			if t.state[i] == slotEmpty {
				break // an empty slot ends the chain
			}
			if t.state[i] == slotLive && t.slots[i].Tag == tag && t.slots[i].Entry.Size() == s {
				return t.slots[i].Entry, true
			}
		}
	}
	return 0, false
}

// insert places or updates a translation, reusing the first tombstone on
// the probe path.
func (t *Table) insert(v addr.VPN, e pte.Entry) error {
	tag := addr.AlignDown(v, e.Size())
	h := t.home(tag)
	firstDead := int64(-1)
	for d := uint64(0); d < uint64(len(t.slots)); d++ {
		i := (h + d) & t.mask
		switch t.state[i] {
		case slotLive:
			if t.slots[i].Tag == tag && t.slots[i].Entry.Size() == e.Size() {
				t.slots[i].Entry = e
				return nil
			}
		case slotDead:
			if firstDead < 0 {
				firstDead = int64(i)
			}
		case slotEmpty:
			if firstDead >= 0 {
				i = uint64(firstDead)
			}
			t.slots[i] = pte.Tagged{Tag: tag, Entry: e}
			t.state[i] = slotLive
			t.live++
			return nil
		}
	}
	if firstDead >= 0 {
		i := uint64(firstDead)
		t.slots[i] = pte.Tagged{Tag: tag, Entry: e}
		t.state[i] = slotLive
		t.live++
		return nil
	}
	return fmt.Errorf("revelator: hash table full (%d slots)", len(t.slots))
}

// remove tombstones the slot holding tag at the given size.
func (t *Table) remove(tag addr.VPN, s addr.PageSize) {
	h := t.home(tag)
	for d := uint64(0); d < uint64(len(t.slots)); d++ {
		i := (h + d) & t.mask
		if t.state[i] == slotEmpty {
			return
		}
		if t.state[i] == slotLive && t.slots[i].Tag == tag && t.slots[i].Entry.Size() == s {
			t.slots[i] = pte.Tagged{}
			t.state[i] = slotDead
			t.live--
			return
		}
	}
}

// Map installs a translation in both structures. A hash-table-full failure
// rolls the radix insert back so the structures never diverge.
func (t *Table) Map(v addr.VPN, e pte.Entry) error {
	if err := t.Radix.Map(v, e); err != nil {
		return err
	}
	if err := t.insert(v, e); err != nil {
		t.Radix.Unmap(v)
		return err
	}
	return nil
}

// Unmap removes a translation from both structures.
func (t *Table) Unmap(v addr.VPN) bool {
	e, found := t.lookup(nil, v)
	ok := t.Radix.Unmap(v)
	if ok && found {
		t.remove(addr.AlignDown(v, e.Size()), e.Size())
	}
	return ok
}

// Lookup is the software walk (the radix table is authoritative; the hash
// mirror always agrees).
func (t *Table) Lookup(v addr.VPN) (pte.Entry, bool) { return t.Radix.Lookup(v) }

// LiveEntries returns the hash table's live translation count.
func (t *Table) LiveEntries() int { return t.live }

// Slots returns the hash table's capacity.
func (t *Table) Slots() int { return len(t.slots) }

// TableBytes returns the physical memory consumed: radix table pages plus
// the hash region.
func (t *Table) TableBytes() uint64 {
	return t.Radix.TableBytes() + phys.BlockBytes(t.order)
}

// Release frees the hash region and the radix table (process exit).
func (t *Table) Release() {
	t.mem.Free(t.base, t.order)
	t.slots = nil
	t.state = nil
	t.Radix.Release()
}

// Walker is the Revelator hardware walker: the speculative hash probe is
// the critical path; the radix verify walk rides the verify region.
type Walker struct {
	tables map[uint16]*Table
	// lastASID/lastTable memoize the most recent tables lookup so batched
	// walks skip the map per access; Attach/Detach invalidate it.
	lastASID  uint16
	lastTable *Table
	rad       *radix.Walker
	// buf is the reusable walk-trace buffer; the verify walk appends into
	// it after the BeginVerify mark, so composing the trace never copies.
	buf mmu.WalkBuf

	specResolved, specMisses stats.Counter
}

// NewWalker creates the walker (radix PWC sizing from Table 1 for the
// verify walk).
func NewWalker() *Walker {
	return &Walker{tables: make(map[uint16]*Table), rad: radix.NewWalker(32)}
}

// Attach registers a table under an ASID.
func (w *Walker) Attach(asid uint16, t *Table) {
	w.tables[asid] = t
	w.lastTable = nil
	w.rad.Attach(asid, t.Radix)
}

// Detach removes a process's table (and its radix walker state).
func (w *Walker) Detach(asid uint16) {
	delete(w.tables, asid)
	w.lastTable = nil
	w.rad.Detach(asid)
}

// table resolves an ASID's table through the one-entry memo.
func (w *Walker) table(asid uint16) (*Table, bool) {
	if w.lastTable != nil && w.lastASID == asid {
		return w.lastTable, true
	}
	t, ok := w.tables[asid]
	if ok {
		w.lastASID, w.lastTable = asid, t
	}
	return t, ok
}

// Name implements mmu.Walker.
func (w *Walker) Name() string { return "revelator" }

// Snapshot implements metrics.Source: speculation counters plus the verify
// walker's PWC counters.
func (w *Walker) Snapshot() metrics.Set {
	s := w.rad.Snapshot()
	s.Counter("spec.resolved", w.specResolved.Value())
	s.Counter("spec.misses", w.specMisses.Value())
	return s
}

var _ metrics.Source = (*Walker)(nil)

// Walk implements mmu.Walker.
func (w *Walker) Walk(asid uint16, v addr.VPN) mmu.Outcome {
	t, ok := w.table(asid)
	if !ok {
		return mmu.Outcome{}
	}
	w.buf.Reset()
	return w.walkInto(&w.buf, t, asid, v, false)
}

// walkInto emits one walk's trace into b: the hash probe chain (dependent
// loads, one group per probe) resolves the translation speculatively; the
// radix verify walk lands after the BeginVerify mark so the simulator
// overlaps it with the data access. The walk-cache charge is StepCycles for
// the hash computation plus the verify walk's PWC probes. A hash miss means
// the page is unmapped (the table mirrors the radix exactly): the fault is
// confirmed by the OS, so no verify walk is issued. batched selects the
// radix walker's plan-replay entry point.
func (w *Walker) walkInto(b *mmu.WalkBuf, t *Table, asid uint16, v addr.VPN, batched bool) mmu.Outcome {
	e, found := t.lookup(b, v)
	if !found {
		w.specMisses.Inc()
		return b.Outcome(0, false, mmu.StepCycles)
	}
	w.specResolved.Inc()
	b.BeginVerify()
	var radOut mmu.Outcome
	if batched {
		radOut = w.rad.WalkNextInto(b, asid, v)
	} else {
		radOut = w.rad.WalkInto(b, asid, v)
	}
	return b.Outcome(e, true, mmu.StepCycles+radOut.WalkCacheCycles)
}

// Lookup implements mmu.Lookuper: resolve from the hash table; on a hit the
// embedded radix walker records the verify-walk plan the following
// WalkBatch replays. The hash table only changes on OS map/unmap — never
// during a batch — so WalkBatch recomputes the same probe chain live.
func (w *Walker) Lookup(asid uint16, v addr.VPN) (pte.Entry, bool) {
	t, ok := w.table(asid)
	if !ok {
		return 0, false
	}
	e, found := t.lookup(nil, v)
	if found {
		w.rad.Lookup(asid, v)
	}
	return e, found
}

// WalkBatch implements mmu.BatchWalker: re-probe the hash table per slot
// (identical to the Lookup-time chain) and replay the recorded radix verify
// plans.
func (w *Walker) WalkBatch(asid uint16, vpns []addr.VPN, bufs *mmu.WalkBatchBuf) {
	bufs.Reset(len(vpns))
	t, ok := w.table(asid)
	for i, v := range vpns {
		if !ok {
			bufs.SetOutcome(i, mmu.Outcome{})
			continue
		}
		bufs.SetOutcome(i, w.walkInto(bufs.Buf(i), t, asid, v, true))
	}
	w.rad.FlushPlans()
}

var _ mmu.Walker = (*Walker)(nil)
var _ mmu.BatchWalker = (*Walker)(nil)
var _ mmu.Lookuper = (*Walker)(nil)
