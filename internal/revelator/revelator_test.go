package revelator

import (
	"math/rand"
	"testing"

	"lvm/internal/addr"
	"lvm/internal/mmu"
	"lvm/internal/phys"
	"lvm/internal/pte"
)

func newTable(t *testing.T, expected int) *Table {
	t.Helper()
	tb, err := New(phys.New(256<<20), expected)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestSizing(t *testing.T) {
	cases := []struct{ expected, slots int }{
		{0, 1024}, {100, 1024}, {614, 1024}, {615, 2048}, {5000, 16384},
	}
	for _, tc := range cases {
		tb := newTable(t, tc.expected)
		if tb.Slots() != tc.slots {
			t.Errorf("New(expected=%d): %d slots, want %d", tc.expected, tb.Slots(), tc.slots)
		}
	}
}

func TestMapLookupUnmap(t *testing.T) {
	tb := newTable(t, 64)
	e := pte.New(0xabc, addr.Page4K)
	if err := tb.Map(7, e); err != nil {
		t.Fatal(err)
	}
	if got, ok := tb.Lookup(7); !ok || got != e {
		t.Fatalf("lookup = %v, %t", got, ok)
	}
	if got, ok := tb.lookup(nil, 7); !ok || got != e {
		t.Fatalf("hash lookup = %v, %t (mirror diverged)", got, ok)
	}
	if !tb.Unmap(7) {
		t.Fatal("unmap failed")
	}
	if _, ok := tb.Lookup(7); ok {
		t.Error("radix lookup after unmap succeeded")
	}
	if _, ok := tb.lookup(nil, 7); ok {
		t.Error("hash lookup after unmap succeeded")
	}
	if tb.LiveEntries() != 0 {
		t.Errorf("live = %d, want 0", tb.LiveEntries())
	}
}

// TestChurnOracle interleaves maps and unmaps and checks the hash mirror
// against the authoritative radix table at every VPN — tombstone reuse and
// chain displacement must never strand or resurrect an entry.
func TestChurnOracle(t *testing.T) {
	tb := newTable(t, 256)
	rng := rand.New(rand.NewSource(23))
	mapped := map[addr.VPN]pte.Entry{}
	for op := 0; op < 5000; op++ {
		v := addr.VPN(rng.Intn(1 << 10))
		if _, ok := mapped[v]; ok && rng.Intn(3) == 0 {
			if !tb.Unmap(v) {
				t.Fatalf("op %d: unmap of mapped %d failed", op, v)
			}
			delete(mapped, v)
		} else {
			e := pte.New(addr.PPN(op+1), addr.Page4K)
			if err := tb.Map(v, e); err != nil {
				t.Fatalf("op %d: map %d: %v", op, v, err)
			}
			mapped[v] = e
		}
	}
	if tb.LiveEntries() != len(mapped) {
		t.Fatalf("live = %d, oracle %d", tb.LiveEntries(), len(mapped))
	}
	for v := addr.VPN(0); v < 1<<10; v++ {
		got, ok := tb.lookup(nil, v)
		want, isMapped := mapped[v]
		if ok != isMapped || (isMapped && got != want) {
			t.Fatalf("VPN %d: hash %v/%t, oracle %v/%t", v, got, ok, want, isMapped)
		}
		rGot, rOK := tb.Lookup(v)
		if rOK != ok || (ok && rGot != got) {
			t.Fatalf("VPN %d: hash and radix diverge (%v/%t vs %v/%t)", v, got, ok, rGot, rOK)
		}
	}
}

// TestTombstoneReuse: unmap then map along the same chain must reuse the
// tombstone rather than extend the chain.
func TestTombstoneReuse(t *testing.T) {
	tb := newTable(t, 64)
	tb.Map(7, pte.New(1, addr.Page4K))
	tb.Unmap(7)
	if err := tb.Map(7, pte.New(2, addr.Page4K)); err != nil {
		t.Fatal(err)
	}
	i := tb.home(7)
	if tb.state[i] != slotLive || tb.slots[i].Entry.PPN() != 2 {
		t.Errorf("home slot state=%d entry=%v, want live remap", tb.state[i], tb.slots[i].Entry)
	}
}

// TestHashFullRollback fills every slot and checks the overflowing Map fails
// atomically: the radix insert must be rolled back so the structures agree.
func TestHashFullRollback(t *testing.T) {
	tb := newTable(t, 64) // 1024 slots
	n := tb.Slots()
	for i := 0; i < n; i++ {
		if err := tb.Map(addr.VPN(i), pte.New(addr.PPN(i+1), addr.Page4K)); err != nil {
			t.Fatalf("map %d: %v", i, err)
		}
	}
	over := addr.VPN(n)
	if err := tb.Map(over, pte.New(0x9999, addr.Page4K)); err == nil {
		t.Fatal("map into a full table succeeded")
	}
	if _, ok := tb.Lookup(over); ok {
		t.Error("radix kept the entry the hash rejected")
	}
	if tb.LiveEntries() != n {
		t.Errorf("live = %d, want %d", tb.LiveEntries(), n)
	}
}

func TestHugePageProbe(t *testing.T) {
	tb := newTable(t, 64)
	base := addr.AlignDown(1<<13, addr.Page2M)
	if err := tb.Map(base, pte.New(0x4000, addr.Page2M)); err != nil {
		t.Fatal(err)
	}
	// Any VPN inside the region resolves through the aligned tag.
	if e, ok := tb.lookup(nil, base+77); !ok || e.Size() != addr.Page2M {
		t.Fatalf("huge lookup = %v, %t", e, ok)
	}
	if !tb.Unmap(base) {
		t.Fatal("huge unmap failed")
	}
	if _, ok := tb.lookup(nil, base+77); ok {
		t.Error("huge entry survived unmap")
	}
}

// TestWalkTraceShape pins the speculative walk's structure: the hash probe
// chain is the critical prefix, the radix verify walk is the suffix, and a
// miss (unmapped page) issues no verify walk at all.
func TestWalkTraceShape(t *testing.T) {
	tb := newTable(t, 64)
	w := NewWalker()
	w.Attach(1, tb)
	tb.Map(7, pte.New(0x100, addr.Page4K))

	out := w.Walk(1, 7)
	if !out.Found || out.Entry.PPN() != 0x100 {
		t.Fatalf("walk = %+v", out)
	}
	if !out.HasVerify() || out.VerifyGroups() != 4 {
		t.Fatalf("verify groups = %d, want the 4-level radix walk", out.VerifyGroups())
	}
	if out.CriticalGroups() < 1 {
		t.Fatalf("critical groups = %d, want the probe chain", out.CriticalGroups())
	}
	// wcc = hash step + the verify walk's PWC probes (cold: one per level
	// above the leaf... pinned only as strictly more than the bare step).
	if out.WalkCacheCycles <= mmu.StepCycles {
		t.Errorf("wcc = %d, want > StepCycles (verify PWC charge missing)", out.WalkCacheCycles)
	}
	if w.specResolved.Value() != 1 {
		t.Errorf("specResolved = %d", w.specResolved.Value())
	}

	miss := w.Walk(1, 9)
	if miss.Found || miss.HasVerify() {
		t.Fatalf("unmapped walk = %+v, want miss with no verify region", miss)
	}
	if miss.NumGroups() < 1 {
		t.Error("unmapped walk issued no probes")
	}
	if miss.WalkCacheCycles != mmu.StepCycles {
		t.Errorf("miss wcc = %d, want bare StepCycles", miss.WalkCacheCycles)
	}
	if w.specMisses.Value() != 1 {
		t.Errorf("specMisses = %d", w.specMisses.Value())
	}
}

// TestBatchMatchesScalar runs the Lookup-then-WalkBatch pipeline against a
// fresh walker's scalar walks: every slot must agree on entry, groups, and
// the verify partition.
func TestBatchMatchesScalar(t *testing.T) {
	build := func() (*Table, *Walker) {
		tb := newTable(t, 64)
		w := NewWalker()
		w.Attach(1, tb)
		for i := 0; i < 32; i++ {
			if err := tb.Map(addr.VPN(i*3), pte.New(addr.PPN(0x100+i), addr.Page4K)); err != nil {
				t.Fatal(err)
			}
		}
		return tb, w
	}
	_, batched := build()
	_, scalar := build()
	vpns := []addr.VPN{0, 3, 30, 5 /* unmapped */, 93, 0}

	for _, v := range vpns {
		batched.Lookup(1, v)
	}
	var bufs mmu.WalkBatchBuf
	batched.WalkBatch(1, vpns, &bufs)

	for i, v := range vpns {
		got := bufs.Outcome(i)
		want := scalar.Walk(1, v)
		if got.Found != want.Found || got.Entry != want.Entry {
			t.Fatalf("slot %d (vpn %d): %v/%t, scalar %v/%t",
				i, v, got.Entry, got.Found, want.Entry, want.Found)
		}
		if got.NumGroups() != want.NumGroups() || got.VerifyGroups() != want.VerifyGroups() {
			t.Fatalf("slot %d (vpn %d): trace %d/%d groups, scalar %d/%d",
				i, v, got.NumGroups(), got.VerifyGroups(), want.NumGroups(), want.VerifyGroups())
		}
		if got.WalkCacheCycles != want.WalkCacheCycles {
			t.Errorf("slot %d (vpn %d): wcc %d, scalar %d",
				i, v, got.WalkCacheCycles, want.WalkCacheCycles)
		}
		for gi := 0; gi < want.NumGroups(); gi++ {
			gg, wg := got.Group(gi), want.Group(gi)
			if len(gg) != len(wg) {
				t.Fatalf("slot %d group %d: %v vs %v", i, gi, gg, wg)
			}
			for j := range wg {
				if gg[j] != wg[j] {
					t.Errorf("slot %d group %d[%d]: %#x vs %#x", i, gi, j, gg[j], wg[j])
				}
			}
		}
	}
}

func TestTableBytesIncludesHashRegion(t *testing.T) {
	tb := newTable(t, 64)
	if tb.TableBytes() != tb.Radix.TableBytes()+phys.BlockBytes(tb.order) {
		t.Errorf("TableBytes = %d, want radix %d + hash %d",
			tb.TableBytes(), tb.Radix.TableBytes(), phys.BlockBytes(tb.order))
	}
}
