// Tests for the batched translation pipeline: batch size must be a pure
// performance knob (bit-identical Results and metrics at any chunk size),
// and fast-forward warmup must leave component state exactly where a
// timing run over the same prefix would.
package sim

import (
	"fmt"
	"reflect"
	"testing"

	"lvm/internal/oskernel"
	"lvm/internal/workload"
)

// batchSizes spans the scalar path (1), a partial chunk (8), and the
// default (64); 7 exercises chunks that never align with anything.
var batchSizes = []int{1, 7, 8, 64}

// runWithBatch builds a fresh system+CPU and runs the whole trace at the
// given chunk size.
func runWithBatch(t *testing.T, scheme oskernel.Scheme, thp bool, p workload.Params, batch int) Result {
	t.Helper()
	cpu, _, w := benchCPU(t, scheme, thp, p)
	cpu.cfg.BatchSize = batch
	return cpu.Run(1, w)
}

// TestBatchBitIdentity is the pipeline's core contract: every batch size
// produces a Result — scalar counters, float cycle sums, and the full
// component metric snapshot — deeply equal to the scalar path's.
func TestBatchBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full-trace comparison across batch sizes is slow under -short")
	}
	p := benchParams()
	for _, scheme := range oskernel.AllSchemes() {
		t.Run(string(scheme), func(t *testing.T) {
			want := runWithBatch(t, scheme, false, p, 1)
			for _, batch := range batchSizes[1:] {
				got := runWithBatch(t, scheme, false, p, batch)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("batch %d diverges from scalar: scalar %+v, batch %+v", batch, want, got)
				}
			}
		})
	}
}

// TestRunFromZeroMatchesRun pins RunFrom(0) to the exact Run path.
func TestRunFromZeroMatchesRun(t *testing.T) {
	p := hitParams()
	cpuA, _, w := benchCPU(t, oskernel.SchemeLVM, false, p)
	cpuB, _, _ := benchCPU(t, oskernel.SchemeLVM, false, p)
	want := cpuA.Run(1, w)
	got := cpuB.RunFrom(1, w, 0)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("RunFrom(0) diverges from Run:\n run: %+v\nfrom: %+v", want, got)
	}
}

// TestWarmStartEquivalence proves FastForward's state-equivalence claim:
// fast-forwarding a prefix and measuring the suffix must produce exactly
// the metrics of running the prefix with full timing and then measuring
// the same suffix — the functional stream touches every state machine
// (TLBs, walk caches, cache tags, DRAM rows) identically.
func TestWarmStartEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("prefix+suffix comparison is slow under -short")
	}
	p := benchParams()
	for _, scheme := range oskernel.AllSchemes() {
		t.Run(string(scheme), func(t *testing.T) {
			cpuA, _, w := benchCPU(t, scheme, false, p)
			cpuB, _, _ := benchCPU(t, scheme, false, p)
			n := len(w.Accesses) / 3

			if got := cpuA.FastForward(1, w, n); got != n {
				t.Fatalf("FastForward consumed %d accesses, want %d", got, n)
			}
			fast := cpuA.RunFrom(1, w, n)

			prefix := *w
			prefix.Accesses = w.Accesses[:n]
			cpuB.Run(1, &prefix)
			timed := cpuB.RunFrom(1, w, n)

			if !reflect.DeepEqual(fast, timed) {
				t.Errorf("warm start diverges from timed prefix:\nfast:  %+v\ntimed: %+v", fast, timed)
			}
		})
	}
}

// TestRunIntervalsBatchBoundaries locks the interval windows in place when
// chunks straddle a cut: an `every` that is not a multiple of the batch
// size must yield the scalar path's exact interval deltas.
func TestRunIntervalsBatchBoundaries(t *testing.T) {
	p := hitParams()
	const every = 777 // deliberately co-prime with every batch size used
	cpuA, _, w := benchCPU(t, oskernel.SchemeRadix, false, p)
	cpuA.cfg.BatchSize = 1
	wantRes, wantIv := cpuA.RunIntervals(1, w, every)
	for _, batch := range batchSizes[1:] {
		cpuB, _, _ := benchCPU(t, oskernel.SchemeRadix, false, p)
		cpuB.cfg.BatchSize = batch
		gotRes, gotIv := cpuB.RunIntervals(1, w, every)
		if !reflect.DeepEqual(wantRes, gotRes) {
			t.Errorf("batch %d: interval-run Result diverges from scalar", batch)
		}
		if !reflect.DeepEqual(wantIv, gotIv) {
			t.Errorf("batch %d: interval windows diverge from scalar (%d vs %d intervals)",
				batch, len(wantIv), len(gotIv))
		}
	}
}

// TestRunTailBatchIdentity checks the per-access latency stream: the batch
// retire phase must hand the tail study the exact float the scalar step
// returns for every access. (A non-nil hook forces the scalar path, so the
// comparison uses the hook-free form.)
func TestRunTailBatchIdentity(t *testing.T) {
	p := hitParams()
	cpuA, _, w := benchCPU(t, oskernel.SchemeLVM, false, p)
	cpuA.cfg.BatchSize = 1
	wantRes, wantLat := cpuA.RunTail(1, w, nil)
	for _, batch := range batchSizes[1:] {
		cpuB, _, _ := benchCPU(t, oskernel.SchemeLVM, false, p)
		cpuB.cfg.BatchSize = batch
		gotRes, gotLat := cpuB.RunTail(1, w, nil)
		if !reflect.DeepEqual(wantRes, gotRes) {
			t.Errorf("batch %d: tail-run Result diverges from scalar", batch)
		}
		if !reflect.DeepEqual(wantLat, gotLat) {
			t.Errorf("batch %d: latency stream diverges from scalar", batch)
		}
	}
}

// TestTranslateBatchZeroAllocs seals the batch pipeline the way
// TestStepZeroAllocs seals the scalar path: after the scratch grows to its
// steady-state footprint, a chunk must not touch the heap for any scheme.
func TestTranslateBatchZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is not meaningful under -short's reduced fixtures")
	}
	for _, scheme := range oskernel.AllSchemes() {
		t.Run(string(scheme), func(t *testing.T) {
			cpu, _, w := benchCPU(t, scheme, false, benchParams())
			if cpu.cfg.Midgard || cpu.bw == nil || cpu.lk == nil {
				t.Skipf("%s does not take the batch pipeline", scheme)
			}
			var res Result
			instrs := w.InstrsPerAccess
			// Two warm passes: grow scratch and LRU slabs, then prove they
			// stopped growing.
			cpu.Run(1, w)
			cpu.Run(1, w)
			n := len(w.Accesses)
			i := 0
			allocs := testing.AllocsPerRun(n/DefaultBatchSize, func() {
				end := i + DefaultBatchSize
				if end > n {
					end = n
				}
				cpu.TranslateBatch(1, w.Window(i, end), instrs, &res, nil)
				i = end
				if i >= n {
					i = 0
				}
			})
			if allocs != 0 {
				t.Errorf("%s: %.2f allocs per steady-state batch, want 0", scheme, allocs)
			}
		})
	}
}

// TestFastForwardZeroAllocs: the warmup stream must stay off the heap too —
// it exists to be cheap.
func TestFastForwardZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is not meaningful under -short's reduced fixtures")
	}
	for _, scheme := range oskernel.AllSchemes() {
		t.Run(string(scheme), func(t *testing.T) {
			cpu, _, w := benchCPU(t, scheme, false, benchParams())
			cpu.FastForward(1, w, len(w.Accesses))
			cpu.FastForward(1, w, len(w.Accesses))
			allocs := testing.AllocsPerRun(3, func() {
				cpu.FastForward(1, w, len(w.Accesses))
			})
			if allocs != 0 {
				t.Errorf("%s: %.2f allocs per steady-state fast-forward pass, want 0", scheme, allocs)
			}
		})
	}
}

// BenchmarkStepBatch is BenchmarkStep through the batch pipeline: cost per
// access at each chunk size (batch64 against BenchmarkStep is the
// amortization headline; batch1 prices the pipeline's dispatch overhead).
func BenchmarkStepBatch(b *testing.B) {
	for _, scheme := range oskernel.AllSchemes() {
		for _, batch := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/batch%d", scheme, batch), func(b *testing.B) {
				cpu, _, w := benchCPU(b, scheme, false, benchParams())
				if cpu.cfg.Midgard || cpu.bw == nil || cpu.lk == nil {
					b.Skipf("%s does not take the batch pipeline", scheme)
				}
				var res Result
				instrs := w.InstrsPerAccess
				cpu.Run(1, w) // warm structures and scratch
				n := len(w.Accesses)
				b.ReportAllocs()
				b.ResetTimer()
				i := 0
				for done := 0; done < b.N; {
					end := i + batch
					if end > n {
						end = n
					}
					cpu.TranslateBatch(1, w.Window(i, end), instrs, &res, nil)
					done += end - i
					i = end
					if i >= n {
						i = 0
					}
				}
			})
		}
	}
}

// BenchmarkFastForward prices one warmup access per scheme — the point of
// the functional mode is that this is well below the timing step's cost.
func BenchmarkFastForward(b *testing.B) {
	for _, scheme := range oskernel.AllSchemes() {
		b.Run(string(scheme), func(b *testing.B) {
			cpu, _, w := benchCPU(b, scheme, false, benchParams())
			n := len(w.Accesses)
			cpu.FastForward(1, w, n)
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; {
				done += cpu.FastForward(1, w, n)
			}
		})
	}
}
