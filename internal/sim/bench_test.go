// Microbenchmarks and allocation guards for the steady-state
// translate-then-access hot path. Every figure in the evaluation is
// produced by replaying millions of accesses through CPU.step, so sweep
// throughput is bounded by this loop; the benchmarks here pin its cost per
// scheme and the alloc tests assert it stays off the garbage collector
// entirely (see EXPERIMENTS.md "Profiling the hot path").
package sim

import (
	"testing"

	"lvm/internal/addr"
	"lvm/internal/oskernel"
	"lvm/internal/phys"
	"lvm/internal/workload"
)

// benchParams puts the workload into the paper's regime: a footprint beyond
// the L2 TLB reach so the walker actually runs in steady state.
func benchParams() workload.Params {
	p := workload.QuickParams()
	p.GUPSTableBytes = 512 << 20
	p.TraceLen = 60_000
	return p
}

// hitParams keeps the footprint tiny so the TLBs absorb nearly every
// access — the walker-idle variant of the hot path.
func hitParams() workload.Params {
	p := workload.QuickParams()
	p.GUPSTableBytes = 2 << 20
	p.TraceLen = 20_000
	return p
}

// benchCPU builds a launched system and a bound core for one scheme.
func benchCPU(tb testing.TB, scheme oskernel.Scheme, thp bool, p workload.Params) (*CPU, *oskernel.System, *workload.Workload) {
	tb.Helper()
	w, err := workload.Build("gups", p)
	if err != nil {
		tb.Fatal(err)
	}
	mem := phys.New(2 << 30)
	sys := oskernel.NewSystem(mem, scheme)
	if _, err := sys.Launch(1, w.Space, thp); err != nil {
		tb.Fatalf("%s: launch: %v", scheme, err)
	}
	cfg := DefaultConfig()
	cfg.Midgard = scheme == oskernel.SchemeMidgard
	return New(cfg, sys.Walker()), sys, w
}

// BenchmarkStep measures one access through the full machine model — TLBs,
// page walk on a miss, cache hierarchy, data access — per scheme. With the
// walker-owned walk buffers this must report 0 allocs/op in steady state;
// TestStepZeroAllocs enforces that, this benchmark tracks the cycles.
func BenchmarkStep(b *testing.B) {
	for _, scheme := range oskernel.AllSchemes() {
		b.Run(string(scheme), func(b *testing.B) {
			cpu, _, w := benchCPU(b, scheme, false, benchParams())
			var res Result
			instrs := w.InstrsPerAccess
			// Warm the structures (TLB/cache/PWC fill, buffer growth).
			for _, a := range w.Accesses {
				cpu.step(1, a, instrs, 0, &res)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cpu.step(1, w.Accesses[i%len(w.Accesses)], instrs, 0, &res)
			}
		})
	}
}

// BenchmarkWalk measures the raw hardware page walk per scheme, bypassing
// the TLBs: every iteration is an L2-TLB-miss path.
func BenchmarkWalk(b *testing.B) {
	for _, scheme := range oskernel.AllSchemes() {
		b.Run(string(scheme), func(b *testing.B) {
			cpu, sys, w := benchCPU(b, scheme, false, benchParams())
			walker := sys.Walker()
			var res Result
			for _, a := range w.Accesses {
				cpu.step(1, a, w.InstrsPerAccess, 0, &res)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := w.Accesses[i%len(w.Accesses)]
				out := walker.Walk(1, addr.VPNOf(a.VA))
				if out.Refs() < 0 {
					b.Fatal("negative refs")
				}
			}
		})
	}
}

// TestStepZeroAllocs is the regression guard for the zero-allocation hot
// path: after warmup, a steady-state step must not touch the heap for any
// scheme, page size, or hit/miss mix. A failure here means a walk path
// regained a per-walk allocation (fresh trace slices, map growth, escaping
// closures) and sweep throughput will decay with walk count again.
func TestStepZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is not meaningful under -short's reduced fixtures")
	}
	for _, scheme := range oskernel.AllSchemes() {
		for _, tc := range []struct {
			name string
			thp  bool
			p    workload.Params
		}{
			{"4k/miss", false, benchParams()},
			{"thp/miss", true, benchParams()},
			{"4k/hit", false, hitParams()},
			{"thp/hit", true, hitParams()},
		} {
			t.Run(string(scheme)+"/"+tc.name, func(t *testing.T) {
				cpu, _, w := benchCPU(t, scheme, tc.thp, tc.p)
				var res Result
				instrs := w.InstrsPerAccess
				// Two warmup passes: the first grows the walk buffers and
				// LRU maps to their steady-state footprint, the second
				// proves they stopped growing.
				for pass := 0; pass < 2; pass++ {
					for _, a := range w.Accesses {
						cpu.step(1, a, instrs, 0, &res)
					}
				}
				i := 0
				allocs := testing.AllocsPerRun(len(w.Accesses), func() {
					cpu.step(1, w.Accesses[i%len(w.Accesses)], instrs, 0, &res)
					i++
				})
				if allocs != 0 {
					t.Errorf("%s %s: %.2f allocs per steady-state step, want 0", scheme, tc.name, allocs)
				}
			})
		}
	}
}
