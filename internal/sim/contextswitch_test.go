package sim

import (
	"testing"

	"lvm/internal/oskernel"
	"lvm/internal/phys"
	"lvm/internal/vas"
)

// TestContextSwitchIsolation runs two processes interleaved on one core:
// ASID tagging in the TLBs and the LWC must keep their translations apart
// with no flushes (paper §4.6.2: the LWC handles context switches without
// flushes, like radix PWCs).
func TestContextSwitchIsolation(t *testing.T) {
	for _, scheme := range []oskernel.Scheme{oskernel.SchemeRadix, oskernel.SchemeLVM} {
		mem := phys.New(512 << 20)
		sys := oskernel.NewSystem(mem, scheme)

		cfg := vas.DefaultConfig()
		cfg.HeapPages = 4096
		cfg.MmapRegions = 1
		cfg.MmapPages = 512
		spaceA := vas.Generate(cfg, 1)
		spaceB := vas.Generate(cfg, 2)
		pa, err := sys.Launch(1, spaceA, false)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := sys.Launch(2, spaceB, false)
		if err != nil {
			t.Fatal(err)
		}

		cpu := New(ScaledConfig(), sys.Walker())
		// Interleave hardware translations of both processes through the
		// same TLBs/LWC via direct walker+TLB exercise.
		heapA := heapRegion(pa)
		heapB := heapRegion(pb)
		for i := 0; i < 2000; i++ {
			va := heapA.Mapped[i%len(heapA.Mapped)]
			vb := heapB.Mapped[i%len(heapB.Mapped)]
			ra, okA := cpu.TLBs().Lookup(1, va)
			if !okA {
				out := sys.Walker().Walk(1, va)
				if !out.Found {
					t.Fatalf("%s: process A VPN %#x not translated", scheme, uint64(va))
				}
				cpu.TLBs().Fill(1, va, out.Entry)
				ra.Entry = out.Entry
			}
			rb, okB := cpu.TLBs().Lookup(2, vb)
			if !okB {
				out := sys.Walker().Walk(2, vb)
				if !out.Found {
					t.Fatalf("%s: process B VPN %#x not translated", scheme, uint64(vb))
				}
				cpu.TLBs().Fill(2, vb, out.Entry)
				rb.Entry = out.Entry
			}
			// Cross-check: each process's software truth must match what
			// the shared hardware returned under its ASID.
			swA, _ := sys.SoftwareLookup(1, va)
			swB, _ := sys.SoftwareLookup(2, vb)
			if ra.Entry != swA {
				t.Fatalf("%s: ASID 1 got ASID-mixed entry at %#x", scheme, uint64(va))
			}
			if rb.Entry != swB {
				t.Fatalf("%s: ASID 2 got ASID-mixed entry at %#x", scheme, uint64(vb))
			}
		}
	}
}

func heapRegion(p *oskernel.Process) *vas.Region {
	for i := range p.Space.Regions {
		if p.Space.Regions[i].Kind == vas.Heap {
			return &p.Space.Regions[i]
		}
	}
	panic("no heap")
}
