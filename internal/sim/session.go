package sim

import (
	"lvm/internal/metrics"
	"lvm/internal/workload"
)

// Session is a resumable run: the same translation loop as Run/RunFrom,
// paused and resumed at arbitrary access positions. A server drives one
// Session per tenant in bounded Step chunks so thousands of concurrent
// traces can interleave on a worker pool, cutting metric windows between
// steps — and because Step replays exactly the chunked batch pipeline the
// one-shot loop uses, a Session's Result and every interval delta are
// bit-identical to Run/RunIntervals over the same trace (test-enforced).
//
// A Session is single-goroutine: the caller serializes Step/Extend/Finish.
type Session struct {
	c      *CPU
	asid   uint16
	trace  []workload.Access
	instrs int
	res    Result
	base   metrics.Set
	delta  bool
	start  int
	pos    int
	// lats, when non-nil, receives access i's end-to-end latency at
	// lats[i-start]; it must have length len(trace)-start.
	lats     []float64
	finished bool
	stream   bool
}

// NewSession starts a resumable run over the workload's full trace.
func (c *CPU) NewSession(asid uint16, w *workload.Workload) *Session {
	return c.NewSessionFrom(asid, w, 0)
}

// NewSessionFrom starts a resumable run over the trace suffix beginning at
// access index start (the RunFrom measured region): component counters are
// reported as deltas over the session. Pair it with FastForward to warm
// state on the prefix first.
func (c *CPU) NewSessionFrom(asid uint16, w *workload.Workload, start int) *Session {
	if start < 0 {
		start = 0
	}
	if start > len(w.Accesses) {
		start = len(w.Accesses)
	}
	s := &Session{
		c:      c,
		asid:   asid,
		trace:  w.Accesses,
		instrs: w.InstrsPerAccess,
		res:    Result{Workload: w.Name, Scheme: c.walker.Name()},
		delta:  start > 0,
		start:  start,
		pos:    start,
	}
	if s.delta {
		s.base = c.Snapshot()
	}
	return s
}

// NewStreamSession starts a resumable run over a trace that arrives
// incrementally via Extend — the serving path, where a client streams
// access chunks over the wire. instrs is the per-access instruction count
// (workload.InstrsPerAccess for trace-file replays).
func (c *CPU) NewStreamSession(asid uint16, name string, instrs int) *Session {
	if instrs < 1 {
		instrs = 1
	}
	return &Session{
		c:      c,
		asid:   asid,
		instrs: instrs,
		res:    Result{Workload: name, Scheme: c.walker.Name()},
		stream: true,
	}
}

// Extend appends streamed accesses to the session's trace. Only stream
// sessions accept input; Extend after Finish is ignored.
func (s *Session) Extend(accesses []workload.Access) {
	if !s.stream || s.finished {
		return
	}
	s.trace = append(s.trace, accesses...)
}

// Pos returns the next access index to simulate.
func (s *Session) Pos() int { return s.pos }

// Len returns the trace length seen so far (stream sessions grow it).
func (s *Session) Len() int { return len(s.trace) }

// Remaining returns the number of accesses available to Step.
func (s *Session) Remaining() int { return len(s.trace) - s.pos }

// Done reports that every available access has been simulated. A stream
// session may become un-done again when Extend delivers more trace.
func (s *Session) Done() bool { return s.pos >= len(s.trace) }

// Step advances the session by up to n accesses through the translation
// pipeline and returns the number consumed. Chunking is a pure performance
// knob: any Step sequence over the same trace produces bit-identical
// results, because the batch pipeline already guarantees it per chunk and
// Step never reorders or splits an access.
func (s *Session) Step(n int) int {
	if s.finished || n <= 0 {
		return 0
	}
	c := s.c
	tr := s.trace
	limit := s.pos + n
	if limit > len(tr) {
		limit = len(tr)
	}
	consumed := limit - s.pos
	if consumed <= 0 {
		return 0
	}
	batch := c.batchSize()
	if c.cfg.Midgard || batch <= 1 || c.bw == nil || c.lk == nil {
		for ; s.pos < limit; s.pos++ {
			lat := c.step(s.asid, tr[s.pos], s.instrs, 0, &s.res)
			if s.lats != nil {
				s.lats[s.pos-s.start] = lat
			}
		}
		return consumed
	}
	for s.pos < limit {
		end := s.pos + batch
		if end > limit {
			end = limit
		}
		var lats []float64
		if s.lats != nil {
			lats = s.lats[s.pos-s.start : end-s.start]
		}
		c.TranslateBatch(s.asid, tr[s.pos:end:end], s.instrs, &s.res, lats)
		s.pos = end
	}
	return consumed
}

// Finish seals the session and derives the Result from the component
// snapshot, exactly as the one-shot run loop does. Idempotent; Step after
// Finish is a no-op.
func (s *Session) Finish() Result {
	if !s.finished {
		s.c.finish(&s.res, s.base, s.delta)
		s.finished = true
	}
	return s.res
}
