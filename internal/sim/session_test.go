// Tests for the resumable Session: any Step chunking must be a pure
// performance knob (bit-identical Result and interval deltas vs the
// one-shot loop), streamed traces must match preloaded ones, and Step must
// stay off the heap — it is the serving hot loop.
package sim

import (
	"reflect"
	"testing"

	"lvm/internal/oskernel"
)

// TestSessionMatchesRun drives a Session in deliberately irregular chunks
// and requires the sealed Result to deeply equal a one-shot Run on an
// identical machine.
func TestSessionMatchesRun(t *testing.T) {
	p := hitParams()
	for _, scheme := range []oskernel.Scheme{oskernel.SchemeLVM, oskernel.SchemeRadix} {
		t.Run(string(scheme), func(t *testing.T) {
			cpuA, _, w := benchCPU(t, scheme, false, p)
			want := cpuA.Run(1, w)

			cpuB, _, _ := benchCPU(t, scheme, false, p)
			s := cpuB.NewSession(1, w)
			for _, n := range []int{1, 13, 50, 7} {
				s.Step(n)
			}
			for !s.Done() {
				s.Step(997)
			}
			got := s.Finish()
			if !reflect.DeepEqual(want, got) {
				t.Errorf("chunked session diverges from Run:\n run: %+v\nsess: %+v", want, got)
			}
			if s.Step(10) != 0 {
				t.Error("Step after Finish consumed accesses")
			}
			if again := s.Finish(); !reflect.DeepEqual(want, again) {
				t.Error("Finish is not idempotent")
			}
		})
	}
}

// TestSessionIntervalsMatchRunIntervals is the serving bit-identity
// contract: stepping `every` accesses at a time and cutting snapshot
// deltas between steps must reproduce RunIntervals' windows and Result
// exactly — this is what lets lvmd stream per-tenant windows that equal a
// standalone run.
func TestSessionIntervalsMatchRunIntervals(t *testing.T) {
	p := hitParams()
	const every = 777
	cpuA, _, w := benchCPU(t, oskernel.SchemeLVM, false, p)
	wantRes, wantIv := cpuA.RunIntervals(1, w, every)

	cpuB, _, _ := benchCPU(t, oskernel.SchemeLVM, false, p)
	s := cpuB.NewSession(1, w)
	var gotIv []Interval
	prev := cpuB.Snapshot()
	for !s.Done() {
		start := s.Pos()
		s.Step(every)
		cur := cpuB.Snapshot()
		gotIv = append(gotIv, Interval{Start: start, End: s.Pos(), Metrics: cur.Delta(prev)})
		prev = cur
	}
	gotRes := s.Finish()
	if !reflect.DeepEqual(wantRes, gotRes) {
		t.Errorf("interval-stepped session Result diverges from RunIntervals")
	}
	if !reflect.DeepEqual(wantIv, gotIv) {
		t.Errorf("session interval windows diverge from RunIntervals (%d vs %d intervals)",
			len(gotIv), len(wantIv))
	}
}

// TestStreamSessionMatchesRun feeds the trace incrementally through Extend
// — interleaving input arrival with Step draining, as the wire path does —
// and requires the Result to equal a one-shot Run over the same trace.
func TestStreamSessionMatchesRun(t *testing.T) {
	p := hitParams()
	cpuA, _, w := benchCPU(t, oskernel.SchemeLVM, false, p)
	want := cpuA.Run(1, w)

	cpuB, _, _ := benchCPU(t, oskernel.SchemeLVM, false, p)
	s := cpuB.NewStreamSession(1, w.Name, w.InstrsPerAccess)
	for i := 0; i < len(w.Accesses); {
		end := i + 501
		if end > len(w.Accesses) {
			end = len(w.Accesses)
		}
		s.Extend(w.Accesses[i:end])
		i = end
		for !s.Done() {
			s.Step(100)
		}
	}
	got := s.Finish()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("stream session diverges from Run:\n run: %+v\nsess: %+v", want, got)
	}
}

// TestSessionStepZeroAllocs seals the serving hot loop: once machine
// scratch is warm, Step must not touch the heap (session creation and
// Finish may; the per-chunk drive loop may not).
func TestSessionStepZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is not meaningful under -short's reduced fixtures")
	}
	cpu, _, w := benchCPU(t, oskernel.SchemeLVM, false, benchParams())
	cpu.Run(1, w)
	cpu.Run(1, w)
	s := cpu.NewSession(1, w)
	n := len(w.Accesses)
	allocs := testing.AllocsPerRun(n/DefaultBatchSize, func() {
		if s.Step(DefaultBatchSize) == 0 {
			s = cpu.NewSession(1, w) // session drained; renew outside measurement interest
		}
	})
	// One renewal allocation amortized across n/batch runs rounds to zero;
	// any per-Step allocation would not.
	if allocs >= 1 {
		t.Errorf("%.2f allocs per steady-state Step, want 0", allocs)
	}
}
