// Package sim is the trace-driven full-system timing simulator that stands
// in for the paper's SST+QEMU stack (§6.1). Each memory access of a
// workload trace flows through the Table-1 machine model: L1/L2 TLBs, the
// scheme's hardware page walker (whose memory requests are charged to the
// cache hierarchy and DRAM), and finally the data access itself.
//
// Cycle accounting models a 4-issue out-of-order core: instructions retire
// at the issue width, translation latency is exposed (an access cannot
// start before its translation), and data-miss latency is partially hidden
// by memory-level parallelism.
package sim

import (
	"fmt"

	"lvm/internal/addr"
	"lvm/internal/cache"
	"lvm/internal/dram"
	"lvm/internal/metrics"
	"lvm/internal/mmu"
	"lvm/internal/pte"
	"lvm/internal/stats"
	"lvm/internal/tlb"
	"lvm/internal/workload"
)

// Config is the machine configuration.
type Config struct {
	Cache cache.Config
	DRAM  dram.Config
	// TLBL1Small, TLBL1Huge, TLBL2, TLBL2Huge size the TLBs (entries per
	// page size; TLBL2Huge defaults to TLBL2).
	TLBL1Small, TLBL1Huge, TLBL2, TLBL2Huge int
	// IssueWidth is the core's retire rate in instructions per cycle.
	IssueWidth float64
	// DataOverlap is the fraction of data-access latency hidden by the
	// out-of-order window and MLP (0 = fully exposed, 1 = fully hidden).
	DataOverlap float64
	// Midgard enables the §7.5.2 model: data requests are looked up with
	// the intermediate (virtual) address first; translation is needed only
	// when the request misses the LLC.
	Midgard bool
}

// withTLBDefaults fills unset TLB geometry with the Table-1 sizes. It is
// the single source of the defaults: DefaultConfig derives its published
// values from it and New normalizes every incoming Config through it, so a
// zero Config can never silently diverge from the documented machine.
func (cfg Config) withTLBDefaults() Config {
	if cfg.TLBL1Small == 0 {
		cfg.TLBL1Small, cfg.TLBL1Huge, cfg.TLBL2 = 64, 32, 2048
	}
	if cfg.TLBL2Huge == 0 {
		cfg.TLBL2Huge = cfg.TLBL2
	}
	return cfg
}

// DefaultConfig matches Table 1 at 2 GHz.
func DefaultConfig() Config {
	return Config{
		Cache:       cache.DefaultConfig(),
		DRAM:        dram.DefaultConfig(),
		IssueWidth:  4,
		DataOverlap: 0.6,
	}.withTLBDefaults()
}

// ScaledConfig is the machine model the experiment harness uses: workload
// footprints are scaled ~50× down from the paper's testbed (124 GB → a few
// GB), so every SRAM structure that the paper sizes against the footprint
// scales with it — caches, TLBs, and the radix PWC — preserving the
// paper's working-set-to-capacity ratios. The LVM walk cache deliberately
// stays at its Table-1 size of 16 entries: the learned index's size is
// footprint-independent (§7.3), and keeping the LWC fixed is precisely the
// property under test.
func ScaledConfig() Config {
	cfg := DefaultConfig()
	// Paper ratios at 124 GB: L2 1 MB (1:124000), L3 2 MB/core (1:62000),
	// L2 TLB reach 8 MB (1:15500). At ~4 GB footprints the proportional
	// sizes are L2 32 KB, L3 64 KB, L2 TLB 128 entries per size. The L1
	// cache keeps a functional minimum (16 KB).
	cfg.Cache.L1 = cache.LevelConfig{SizeBytes: 16 << 10, Ways: 8, LatencyCycles: 1}
	cfg.Cache.L2 = cache.LevelConfig{SizeBytes: 32 << 10, Ways: 8, LatencyCycles: 20}
	cfg.Cache.L3 = cache.LevelConfig{SizeBytes: 64 << 10, Ways: 16, LatencyCycles: 56}
	// 4 KB TLB reach ratio 1:15500 and 2 MB reach ratio 1:19 at the
	// paper's scale map to 128 and 32 entries here.
	cfg.TLBL1Small = 16
	cfg.TLBL1Huge = 8
	cfg.TLBL2 = 128
	cfg.TLBL2Huge = 32
	return cfg
}

// ScaledHW returns the walk-cache sizing for ScaledConfig: the radix PWC
// scales to 8 entries per level — still ~4 generous versus the strict
// footprint-proportional size (Table 1's 32×2MB reach against a 124 GB
// footprint is 1:1200; 8×2MB against ~2 GB is 1:128), and it lands radix's
// PDE miss rates inside the paper's reported 59.7–99.6% band. The LWC
// stays at its Table-1 16 entries — footprint-independence is LVM's claim
// under test.
func ScaledHW() (pwcEntriesPerLevel, lwcEntries int) { return 8, 16 }

// Result carries the metrics every figure of §7 is derived from.
type Result struct {
	Workload string
	Scheme   string

	Instructions uint64
	Accesses     uint64
	Cycles       float64

	// MMU overhead components (Figure 10): cycles spent translating.
	TLBCycles  float64
	WalkCycles float64

	// Walks and page-walk memory traffic (Figure 11).
	Walks    uint64
	WalkRefs uint64

	// TLB behaviour.
	L1TLBMisses uint64
	L2TLBMisses uint64
	L2TLBMiss   float64 // rate

	// Cache behaviour (Figure 12).
	L2MPKI, L3MPKI float64
	L1MPKI         float64
	DRAMAccesses   uint64

	// Translation faults (accesses to unmapped pages; should be zero).
	Faults uint64

	// Metrics is the full component snapshot taken when the run finished —
	// every counter the scalar fields above are derived from, plus the
	// derived rates as gauges, under the stable dot-namespaced schema
	// (tlb.*, cache.*, dram.*, walk.*, run.*). It is what lvmbench -json
	// serializes per run.
	Metrics metrics.Set
}

// Snapshot implements metrics.Source over the finished run.
func (r Result) Snapshot() metrics.Set { return r.Metrics }

// MMUCycles returns the total translation overhead.
func (r Result) MMUCycles() float64 { return r.TLBCycles + r.WalkCycles }

// CPU is one simulated core with private TLBs and caches.
type CPU struct {
	cfg    Config
	tlbs   *tlb.Hierarchy
	caches *cache.Hierarchy
	walker mmu.Walker
}

// New creates a core bound to a scheme walker.
func New(cfg Config, walker mmu.Walker) *CPU {
	cfg = cfg.withTLBDefaults()
	return &CPU{
		cfg:    cfg,
		tlbs:   tlb.NewHierarchySized(cfg.TLBL1Small, cfg.TLBL1Huge, cfg.TLBL2, cfg.TLBL2Huge),
		caches: cache.New(cfg.Cache, dram.New(cfg.DRAM)),
		walker: walker,
	}
}

// TLBs exposes the TLB hierarchy for inspection.
func (c *CPU) TLBs() *tlb.Hierarchy { return c.tlbs }

// Caches exposes the cache hierarchy for inspection.
func (c *CPU) Caches() *cache.Hierarchy { return c.caches }

// walkLatency charges a walk's memory requests to the cache hierarchy:
// groups are sequential, requests within a group run in parallel (their
// latency is the max). The outcome's trace is a view into the walker's
// buffer, consumed here before the next walk can reset it.
func (c *CPU) walkLatency(out mmu.Outcome) float64 {
	lat := float64(out.WalkCacheCycles)
	for gi, groups := 0, out.NumGroups(); gi < groups; gi++ {
		groupMax := 0
		for _, pa := range out.Group(gi) {
			if l := c.caches.Access(pa, true); l > groupMax {
				groupMax = l
			}
		}
		lat += float64(groupMax)
	}
	return lat
}

// translate charges the TLB lookup and, on an L2 TLB miss, the hardware
// page walk — the translation accounting shared by step and stepMidgard.
// Cycle components accrue onto res and *lat in arrival order (so latency
// sums stay bit-identical wherever they are accumulated); it returns the
// translation and whether the access faulted on an unmapped page.
func (c *CPU) translate(asid uint16, v addr.VPN, res *Result, lat *float64) (pte.Entry, bool) {
	tr, hit := c.tlbs.Lookup(asid, v)
	res.TLBCycles += float64(tr.Latency)
	res.Cycles += float64(tr.Latency)
	*lat += float64(tr.Latency)
	entry := tr.Entry
	if !hit {
		res.L2TLBMisses++
		out := c.walker.Walk(asid, v)
		res.Walks++
		res.WalkRefs += uint64(out.Refs())
		wlat := c.walkLatency(out)
		res.WalkCycles += wlat
		res.Cycles += wlat
		*lat += wlat
		if !out.Found {
			res.Faults++
			return 0, true
		}
		entry = out.Entry
		c.tlbs.Fill(asid, v, entry)
	}
	if !tr.HitL1 {
		res.L1TLBMisses++
	}
	return entry, false
}

// Run simulates a trace for one process (ASID) and returns the metrics.
func (c *CPU) Run(asid uint16, w *workload.Workload) Result {
	return c.run(asid, w, nil, nil)
}

// run is the single translation loop behind Run, RunTail and RunIntervals:
// per access it charges the instruction-retire cycles, any hook-injected
// extra work, and then the access path via step. obs, when non-nil,
// observes every access index and its end-to-end latency after the access
// completes — the tail study records latencies and the interval snapshots
// cut windows there.
func (c *CPU) run(asid uint16, w *workload.Workload, hook func(i int) float64, obs func(i int, lat float64)) Result {
	res := Result{Workload: w.Name, Scheme: c.walker.Name()}
	instrs := w.InstrsPerAccess
	for i, a := range w.Accesses {
		extra := 0.0
		if hook != nil {
			extra = hook(i)
		}
		lat := c.step(asid, a, instrs, extra, &res)
		if obs != nil {
			obs(i, lat)
		}
	}
	c.finish(&res)
	return res
}

// step runs one access through the machine model — the per-access
// translate-then-access sequence shared by every access path. Each cycle
// component is charged to res.Cycles as it accrues; the return value is
// the access's end-to-end latency (the same components summed in accrual
// order), which the tail study consumes per request.
func (c *CPU) step(asid uint16, a workload.Access, instrs int, extra float64, res *Result) float64 {
	res.Instructions += uint64(instrs)
	res.Accesses++
	retire := float64(instrs) / c.cfg.IssueWidth
	lat := retire + extra
	res.Cycles += retire
	res.Cycles += extra

	v := addr.VPNOf(a.VA)

	if c.cfg.Midgard {
		return lat + c.stepMidgard(asid, a, v, res)
	}

	// 1. TLB, and on an L2 TLB miss 2. the page walk.
	entry, fault := c.translate(asid, v, res, &lat)
	if fault {
		return lat
	}

	// 3. Data access.
	pa := addr.Translate(a.VA, entry.PPN(), entry.Size())
	dataLat := float64(c.caches.Access(pa, false)) * (1 - c.cfg.DataOverlap)
	res.Cycles += dataLat
	return lat + dataLat
}

// stepMidgard handles one access in the Midgard model: the cache hierarchy
// is indexed by the intermediate (virtual) address, so hits need no
// translation at all; only LLC misses trigger a radix walk to reach DRAM.
// It returns the latency charged beyond the instruction-retire component.
func (c *CPU) stepMidgard(asid uint16, a workload.Access, v addr.VPN, res *Result) float64 {
	// VMA-level Midgard translation is a handful of registers: free.
	//lint:allow addrtypes Midgard's cache hierarchy is indexed by the intermediate (virtual) address, so the VA bits are reinterpreted as the cache key on purpose
	raw := c.caches.Access(addr.PA(a.VA), false)
	llcMiss := raw > c.cfg.Cache.L3.LatencyCycles
	dataLat := float64(raw) * (1 - c.cfg.DataOverlap)
	res.Cycles += dataLat
	lat := dataLat
	if !llcMiss {
		return lat
	}
	// LLC miss: translate to reach memory (backside radix walk).
	c.translate(asid, v, res, &lat)
	return lat
}

// Snapshot implements metrics.Source: the uniform component snapshot of
// the whole core — TLB hierarchy under "tlb.", cache hierarchy under
// "cache.", memory model under "dram.", and the scheme walker's walk
// caches under "walk." (every scheme walker is a metrics.Source).
func (c *CPU) Snapshot() metrics.Set {
	var s metrics.Set
	s.Merge("tlb", c.tlbs.Snapshot())
	s.Merge("cache", c.caches.Snapshot())
	s.Merge("dram", c.caches.DRAM().Snapshot())
	if src, ok := c.walker.(metrics.Source); ok {
		s.Merge("walk", src.Snapshot())
	}
	return s
}

var _ metrics.Source = (*CPU)(nil)

// finish derives the Result's rate and traffic fields from the component
// snapshot — Result is a thin derivation over the metrics layer, not a
// separate accounting.
func (c *CPU) finish(res *Result) {
	s := c.Snapshot()
	res.L2TLBMiss = stats.Ratio(s.Uint("tlb.l2.misses"),
		s.Uint("tlb.l2.hits")+s.Uint("tlb.l2.misses"))
	mpki := func(level string) float64 {
		return stats.PerKilo(s.Uint("cache."+level+".demand_misses")+
			s.Uint("cache."+level+".walk_misses"), res.Instructions)
	}
	res.L1MPKI = mpki("l1")
	res.L2MPKI = mpki("l2")
	res.L3MPKI = mpki("l3")
	res.DRAMAccesses = s.Uint("dram.accesses")

	// Fold the run-level counters and derived rates into the snapshot so a
	// Result carries the complete, self-describing metric set.
	s.Counter("run.instructions", res.Instructions)
	s.Counter("run.accesses", res.Accesses)
	s.Counter("run.faults", res.Faults)
	s.Counter("run.l1_tlb_misses", res.L1TLBMisses)
	s.Counter("run.l2_tlb_misses", res.L2TLBMisses)
	s.Counter("walk.walks", res.Walks)
	s.Counter("walk.refs", res.WalkRefs)
	s.Gauge("run.cycles", res.Cycles)
	s.Gauge("run.tlb_cycles", res.TLBCycles)
	s.Gauge("run.walk_cycles", res.WalkCycles)
	s.Gauge("tlb.l2.miss_rate", res.L2TLBMiss)
	s.Gauge("cache.l1.mpki", res.L1MPKI)
	s.Gauge("cache.l2.mpki", res.L2MPKI)
	s.Gauge("cache.l3.mpki", res.L3MPKI)
	res.Metrics = s
}

// Speedup returns base cycles / this cycles.
func Speedup(base, other Result) float64 {
	if other.Cycles == 0 {
		return 0
	}
	return base.Cycles / other.Cycles
}

// String renders the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s: %.0f cycles, MMU %.1f%% (walk %.1f%%), %.2f refs/walk, L2TLB miss %.1f%%, L2 MPKI %.2f, L3 MPKI %.2f",
		r.Workload, r.Scheme, r.Cycles,
		100*r.MMUCycles()/r.Cycles, 100*r.WalkCycles/r.Cycles,
		stats.Ratio(r.WalkRefs, r.Walks),
		100*r.L2TLBMiss, r.L2MPKI, r.L3MPKI)
}
