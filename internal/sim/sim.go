// Package sim is the trace-driven full-system timing simulator that stands
// in for the paper's SST+QEMU stack (§6.1). Each memory access of a
// workload trace flows through the Table-1 machine model: L1/L2 TLBs, the
// scheme's hardware page walker (whose memory requests are charged to the
// cache hierarchy and DRAM), and finally the data access itself.
//
// Cycle accounting models a 4-issue out-of-order core: instructions retire
// at the issue width, translation latency is exposed (an access cannot
// start before its translation), and data-miss latency is partially hidden
// by memory-level parallelism.
package sim

import (
	"fmt"

	"lvm/internal/addr"
	"lvm/internal/cache"
	"lvm/internal/dram"
	"lvm/internal/metrics"
	"lvm/internal/mmu"
	"lvm/internal/pte"
	"lvm/internal/stats"
	"lvm/internal/tlb"
	"lvm/internal/workload"
)

// Config is the machine configuration.
type Config struct {
	Cache cache.Config
	DRAM  dram.Config
	// TLBL1Small, TLBL1Huge, TLBL2, TLBL2Huge size the TLBs (entries per
	// page size; TLBL2Huge defaults to TLBL2).
	TLBL1Small, TLBL1Huge, TLBL2, TLBL2Huge int
	// IssueWidth is the core's retire rate in instructions per cycle.
	IssueWidth float64
	// DataOverlap is the fraction of data-access latency hidden by the
	// out-of-order window and MLP (0 = fully exposed, 1 = fully hidden).
	DataOverlap float64
	// Midgard enables the §7.5.2 model: data requests are looked up with
	// the intermediate (virtual) address first; translation is needed only
	// when the request misses the LLC.
	Midgard bool
	// BatchSize is the translation pipeline's chunk size — a pure
	// performance knob: every value produces bit-identical Results and
	// metrics (test-enforced). 0 means DefaultBatchSize; 1 forces the
	// scalar per-access path. Excluded from JSON (and therefore from the
	// experiment config fingerprint) because it cannot change any output.
	BatchSize int `json:"-"`
}

// DefaultBatchSize is the translation pipeline's chunk size when
// Config.BatchSize is zero.
const DefaultBatchSize = 64

// withTLBDefaults fills unset TLB geometry with the Table-1 sizes. It is
// the single source of the defaults: DefaultConfig derives its published
// values from it and New normalizes every incoming Config through it, so a
// zero Config can never silently diverge from the documented machine.
func (cfg Config) withTLBDefaults() Config {
	if cfg.TLBL1Small == 0 {
		cfg.TLBL1Small, cfg.TLBL1Huge, cfg.TLBL2 = 64, 32, 2048
	}
	if cfg.TLBL2Huge == 0 {
		cfg.TLBL2Huge = cfg.TLBL2
	}
	return cfg
}

// DefaultConfig matches Table 1 at 2 GHz.
func DefaultConfig() Config {
	return Config{
		Cache:       cache.DefaultConfig(),
		DRAM:        dram.DefaultConfig(),
		IssueWidth:  4,
		DataOverlap: 0.6,
	}.withTLBDefaults()
}

// ScaledConfig is the machine model the experiment harness uses: workload
// footprints are scaled ~50× down from the paper's testbed (124 GB → a few
// GB), so every SRAM structure that the paper sizes against the footprint
// scales with it — caches, TLBs, and the radix PWC — preserving the
// paper's working-set-to-capacity ratios. The LVM walk cache deliberately
// stays at its Table-1 size of 16 entries: the learned index's size is
// footprint-independent (§7.3), and keeping the LWC fixed is precisely the
// property under test.
func ScaledConfig() Config {
	cfg := DefaultConfig()
	// Paper ratios at 124 GB: L2 1 MB (1:124000), L3 2 MB/core (1:62000),
	// L2 TLB reach 8 MB (1:15500). At ~4 GB footprints the proportional
	// sizes are L2 32 KB, L3 64 KB, L2 TLB 128 entries per size. The L1
	// cache keeps a functional minimum (16 KB).
	cfg.Cache.L1 = cache.LevelConfig{SizeBytes: 16 << 10, Ways: 8, LatencyCycles: 1}
	cfg.Cache.L2 = cache.LevelConfig{SizeBytes: 32 << 10, Ways: 8, LatencyCycles: 20}
	cfg.Cache.L3 = cache.LevelConfig{SizeBytes: 64 << 10, Ways: 16, LatencyCycles: 56}
	// 4 KB TLB reach ratio 1:15500 and 2 MB reach ratio 1:19 at the
	// paper's scale map to 128 and 32 entries here.
	cfg.TLBL1Small = 16
	cfg.TLBL1Huge = 8
	cfg.TLBL2 = 128
	cfg.TLBL2Huge = 32
	return cfg
}

// ScaledHW returns the walk-cache sizing for ScaledConfig: the radix PWC
// scales to 8 entries per level — still ~4 generous versus the strict
// footprint-proportional size (Table 1's 32×2MB reach against a 124 GB
// footprint is 1:1200; 8×2MB against ~2 GB is 1:128), and it lands radix's
// PDE miss rates inside the paper's reported 59.7–99.6% band. The LWC
// stays at its Table-1 16 entries — footprint-independence is LVM's claim
// under test.
func ScaledHW() (pwcEntriesPerLevel, lwcEntries int) { return 8, 16 }

// Result carries the metrics every figure of §7 is derived from.
type Result struct {
	Workload string
	Scheme   string

	Instructions uint64
	Accesses     uint64
	Cycles       float64

	// MMU overhead components (Figure 10): cycles spent translating.
	TLBCycles  float64
	WalkCycles float64

	// Walks and page-walk memory traffic (Figure 11).
	Walks    uint64
	WalkRefs uint64

	// TLB behaviour.
	L1TLBMisses uint64
	L2TLBMisses uint64
	L2TLBMiss   float64 // rate

	// Cache behaviour (Figure 12).
	L2MPKI, L3MPKI float64
	L1MPKI         float64
	DRAMAccesses   uint64

	// Translation faults (accesses to unmapped pages; should be zero).
	Faults uint64

	// Metrics is the full component snapshot taken when the run finished —
	// every counter the scalar fields above are derived from, plus the
	// derived rates as gauges, under the stable dot-namespaced schema
	// (tlb.*, cache.*, dram.*, walk.*, run.*). It is what lvmbench -json
	// serializes per run.
	Metrics metrics.Set
}

// Snapshot implements metrics.Source over the finished run.
func (r Result) Snapshot() metrics.Set { return r.Metrics }

// MMUCycles returns the total translation overhead.
func (r Result) MMUCycles() float64 { return r.TLBCycles + r.WalkCycles }

// CPU is one simulated core with private TLBs and caches.
type CPU struct {
	cfg    Config
	tlbs   *tlb.Hierarchy
	caches *cache.Hierarchy
	walker mmu.Walker
	// bw/lk are the walker's batch seam, nil when it only implements the
	// scalar Walk (the pipeline needs both: lk resolves misses functionally
	// so the TLB can fill in arrival order, bw replays the timing walks).
	bw mmu.BatchWalker
	lk mmu.Lookuper

	batch batchState
}

// batchState is the reusable scratch of the translation pipeline.
type batchState struct {
	bufs mmu.WalkBatchBuf
	vpns []addr.VPN
	recs []accessRec
}

// accessRec carries one access's functional-phase results to the retire
// phase.
type accessRec struct {
	va     addr.VA
	vpn    addr.VPN
	entry  pte.Entry
	tlbLat int
	slot   int32
	hitL1  bool
	miss   bool
	fault  bool
}

// New creates a core bound to a scheme walker.
func New(cfg Config, walker mmu.Walker) *CPU {
	cfg = cfg.withTLBDefaults()
	c := &CPU{
		cfg:    cfg,
		tlbs:   tlb.NewHierarchySized(cfg.TLBL1Small, cfg.TLBL1Huge, cfg.TLBL2, cfg.TLBL2Huge),
		caches: cache.New(cfg.Cache, dram.New(cfg.DRAM)),
		walker: walker,
	}
	c.bw, _ = walker.(mmu.BatchWalker)
	c.lk, _ = walker.(mmu.Lookuper)
	return c
}

// batchSize resolves the configured chunk size.
func (c *CPU) batchSize() int {
	if c.cfg.BatchSize == 0 {
		return DefaultBatchSize
	}
	return c.cfg.BatchSize
}

// TLBs exposes the TLB hierarchy for inspection.
func (c *CPU) TLBs() *tlb.Hierarchy { return c.tlbs }

// Caches exposes the cache hierarchy for inspection.
func (c *CPU) Caches() *cache.Hierarchy { return c.caches }

// walkLatency charges a walk's memory requests to the cache hierarchy:
// groups are sequential, requests within a group run in parallel (their
// latency is the max). The outcome's trace is a view into the walker's
// buffer, consumed here before the next walk can reset it.
//
// The returned pair splits the walk at the verify boundary: critical is the
// resolve prefix the data access must wait for, verify the overlappable
// suffix (zero for traces without a verify region). For a no-verify trace
// every group accrues into critical through the single accumulator below, in
// group order — the exact float-operation sequence of the pre-overlap model,
// which is what keeps the seven non-speculative schemes bit-identical.
func (c *CPU) walkLatency(out mmu.Outcome) (critical, verify float64) {
	critical = float64(out.WalkCacheCycles)
	vstart := out.CriticalGroups()
	for gi, groups := 0, out.NumGroups(); gi < groups; gi++ {
		groupMax := 0
		for _, pa := range out.Group(gi) {
			if l := c.caches.Access(pa, true); l > groupMax {
				groupMax = l
			}
		}
		if gi < vstart {
			critical += float64(groupMax)
		} else {
			verify += float64(groupMax)
		}
	}
	return critical, verify
}

// translate charges the TLB lookup and, on an L2 TLB miss, the hardware
// page walk — the translation accounting shared by step and stepMidgard.
// Cycle components accrue onto res and *lat in arrival order (so latency
// sums stay bit-identical wherever they are accumulated); it returns the
// translation, the walk's pending verify latency (the overlappable suffix,
// zero for non-speculative schemes — the caller charges its exposed excess
// over the data access), and whether the access faulted on an unmapped
// page. A faulting walk has nothing to overlap with, so its verify suffix
// is charged here in full.
func (c *CPU) translate(asid uint16, v addr.VPN, res *Result, lat *float64) (pte.Entry, float64, bool) {
	tr, hit := c.tlbs.Lookup(asid, v)
	res.TLBCycles += float64(tr.Latency)
	res.Cycles += float64(tr.Latency)
	*lat += float64(tr.Latency)
	entry := tr.Entry
	verify := 0.0
	if !hit {
		res.L2TLBMisses++
		out := c.walker.Walk(asid, v)
		res.Walks++
		res.WalkRefs += uint64(out.Refs())
		wlat, wver := c.walkLatency(out)
		res.WalkCycles += wlat
		res.Cycles += wlat
		*lat += wlat
		if !out.Found {
			if wver != 0 {
				res.WalkCycles += wver
				res.Cycles += wver
				*lat += wver
			}
			res.Faults++
			return 0, 0, true
		}
		verify = wver
		entry = out.Entry
		c.tlbs.Fill(asid, v, entry)
	}
	if !tr.HitL1 {
		res.L1TLBMisses++
	}
	return entry, verify, false
}

// Run simulates a trace for one process (ASID) and returns the metrics.
func (c *CPU) Run(asid uint16, w *workload.Workload) Result {
	return c.run(asid, w, runOpts{})
}

// RunFrom simulates the trace suffix starting at access index start and
// returns metrics covering only that measured region: component counters
// are reported as the delta over the run (float cycle accounting starts at
// zero anyway). RunFrom(0) is exactly Run. Pair it with FastForward to
// warm state on a prefix and measure the rest.
func (c *CPU) RunFrom(asid uint16, w *workload.Workload, start int) Result {
	if start < 0 {
		start = 0
	}
	if start > len(w.Accesses) {
		start = len(w.Accesses)
	}
	return c.run(asid, w, runOpts{start: start})
}

// runOpts selects run's optional behaviours; the zero value is a plain
// full-trace run. It replaces the hook/obs closure pair the step
// unification left behind: latency observation and interval cuts are part
// of the loop itself now, so the batch retire path can feed them directly.
type runOpts struct {
	// start is the first access index simulated (the measured region is
	// [start, len(Accesses))). When start > 0, finish reports component
	// counters as deltas over the run.
	start int
	// hook injects per-access extra cycles (OS work). A non-nil hook can
	// mutate OS state between accesses, which would invalidate recorded
	// walk plans — so it forces the scalar path.
	hook func(i int) float64
	// lats, when non-nil, receives access i's end-to-end latency at
	// lats[i-start]; it must have length len(Accesses)-start.
	lats []float64
	// every cuts interval windows at access-count multiples (0 = none);
	// cut is invoked at each boundary. Batch chunks are clamped so a batch
	// never straddles a boundary.
	every int
	cut   func(end int)
}

// run is the single translation loop behind Run, RunFrom, RunTail and
// RunIntervals, implemented over the resumable Session: the trace is
// consumed in Step chunks clamped to interval boundaries so a batch never
// straddles a cut. Per-access hooks can mutate OS state between accesses
// (invalidating recorded walk plans), so the hook path keeps its dedicated
// scalar loop; all paths produce bit-identical Results.
func (c *CPU) run(asid uint16, w *workload.Workload, o runOpts) Result {
	if o.hook != nil {
		res := Result{Workload: w.Name, Scheme: c.walker.Name()}
		var base metrics.Set
		if o.start > 0 {
			base = c.Snapshot()
		}
		instrs := w.InstrsPerAccess
		for i := o.start; i < len(w.Accesses); i++ {
			lat := c.step(asid, w.Accesses[i], instrs, o.hook(i), &res)
			if o.lats != nil {
				o.lats[i-o.start] = lat
			}
			if o.every > 0 && (i+1)%o.every == 0 {
				o.cut(i + 1)
			}
		}
		c.finish(&res, base, o.start > 0)
		return res
	}
	s := c.NewSessionFrom(asid, w, o.start)
	s.lats = o.lats
	for !s.Done() {
		limit := s.Remaining()
		if o.every > 0 {
			// Clamp the step to the next interval boundary so a batch never
			// straddles a cut and window contents cannot shift.
			if next := (s.pos/o.every+1)*o.every - s.pos; next < limit {
				limit = next
			}
		}
		s.Step(limit)
		if o.every > 0 && s.pos%o.every == 0 {
			o.cut(s.pos)
		}
	}
	return s.Finish()
}

// prepareBatch runs the pipeline's functional and timing-walk phases over
// one chunk. Phase T, per access in arrival order: probe the TLB; on an L2
// miss resolve the translation functionally (mmu.Lookuper) and fill the
// TLB, so later accesses to the same page hit exactly as they would in the
// scalar loop. Phase W: one WalkBatch over the misses replays the recorded
// plans — walk-cache state and request traces accrue per miss in arrival
// order. Each component (TLB, walk caches, cache hierarchy) sees exactly
// the scalar loop's operation sequence, which is why results stay
// bit-identical at any batch size.
func (c *CPU) prepareBatch(asid uint16, accesses []workload.Access) []accessRec {
	n := len(accesses)
	for len(c.batch.recs) < n {
		//lint:allow hotalloc record slab grows to the batch size once, then recycles
		c.batch.recs = append(c.batch.recs, accessRec{})
	}
	recs := c.batch.recs[:n]
	vpns := c.batch.vpns[:0]
	nmiss := 0
	for k := range accesses {
		a := &accesses[k]
		v := addr.VPNOf(a.VA)
		r := &recs[k]
		tr, hit := c.tlbs.Lookup(asid, v)
		r.va = a.VA
		r.vpn = v
		r.entry = tr.Entry
		r.tlbLat = tr.Latency
		r.hitL1 = tr.HitL1
		r.miss = !hit
		r.fault = false
		if !hit {
			r.slot = int32(nmiss)
			nmiss++
			//lint:allow hotalloc miss list grows to the batch size once, then recycles
			vpns = append(vpns, v)
			e, found := c.lk.Lookup(asid, v)
			r.entry = e
			r.fault = !found
			if found {
				c.tlbs.Fill(asid, v, e)
			}
		}
	}
	c.batch.vpns = vpns
	if nmiss > 0 {
		c.bw.WalkBatch(asid, vpns, &c.batch.bufs)
	}
	return recs
}

// TranslateBatch runs one chunk of accesses through the three-phase
// translation pipeline and charges the existing accounting in arrival
// order. Phase R (retire), per access: the same float accruals, in the
// same per-accumulator order, as the scalar step — retire, TLB latency,
// walk latency (charging the walk's memory requests to the caches), data
// access — so tail-study latencies and every cycle sum stay bit-identical.
// lats, when non-nil, receives per-access end-to-end latencies.
func (c *CPU) TranslateBatch(asid uint16, accesses []workload.Access, instrs int, res *Result, lats []float64) {
	recs := c.prepareBatch(asid, accesses)
	retire := float64(instrs) / c.cfg.IssueWidth
	for k := range recs {
		r := &recs[k]
		res.Instructions += uint64(instrs)
		res.Accesses++
		lat := retire
		res.Cycles += retire
		res.TLBCycles += float64(r.tlbLat)
		res.Cycles += float64(r.tlbLat)
		lat += float64(r.tlbLat)
		verify := 0.0
		if r.miss {
			res.L2TLBMisses++
			out := c.batch.bufs.Outcome(int(r.slot))
			res.Walks++
			res.WalkRefs += uint64(out.Refs())
			wlat, wver := c.walkLatency(out)
			res.WalkCycles += wlat
			res.Cycles += wlat
			lat += wlat
			if r.fault {
				// A faulting walk has no data access to overlap with.
				if wver != 0 {
					res.WalkCycles += wver
					res.Cycles += wver
					lat += wver
				}
				res.Faults++
				if lats != nil {
					lats[k] = lat
				}
				continue
			}
			verify = wver
		}
		if !r.hitL1 {
			res.L1TLBMisses++
		}
		pa := addr.Translate(r.va, r.entry.PPN(), r.entry.Size())
		dataLat := float64(c.caches.Access(pa, false)) * (1 - c.cfg.DataOverlap)
		// Verify-overlap: same accounting as step — only the suffix's excess
		// over the exposed data latency is charged (zero extra float ops for
		// non-speculative schemes).
		if verify > dataLat {
			exposed := verify - dataLat
			res.WalkCycles += exposed
			res.Cycles += exposed
			lat += exposed
		}
		res.Cycles += dataLat
		lat += dataLat
		if lats != nil {
			lats[k] = lat
		}
	}
}

// FastForward streams the first n accesses of the trace through the
// machine's functional state — TLBs, walk caches, cache tags, DRAM rows —
// with no latency accounting and no Result: component state afterwards is
// exactly what a timing run over the same prefix leaves behind, at a
// fraction of the cost. It returns the number of accesses consumed
// (min(n, len(trace))); follow with RunFrom to measure from warmed state.
func (c *CPU) FastForward(asid uint16, w *workload.Workload, n int) int {
	if n > len(w.Accesses) {
		n = len(w.Accesses)
	}
	if n <= 0 {
		return 0
	}
	batch := c.batchSize()
	if c.cfg.Midgard || batch <= 1 || c.bw == nil || c.lk == nil {
		for i := 0; i < n; i++ {
			c.forwardStep(asid, w.Accesses[i])
		}
		return n
	}
	for i := 0; i < n; {
		end := i + batch
		if end > n {
			end = n
		}
		recs := c.prepareBatch(asid, w.Window(i, end))
		for k := range recs {
			r := &recs[k]
			if r.miss {
				out := c.batch.bufs.Outcome(int(r.slot))
				for gi, groups := 0, out.NumGroups(); gi < groups; gi++ {
					for _, pa := range out.Group(gi) {
						c.caches.Access(pa, true)
					}
				}
				if r.fault {
					continue
				}
			}
			pa := addr.Translate(r.va, r.entry.PPN(), r.entry.Size())
			c.caches.Access(pa, false)
		}
		i = end
	}
	return n
}

// forwardStep is FastForward's scalar fallback (Midgard, batch size 1, or
// walkers without the batch seam): the state operations of step, none of
// the accounting.
func (c *CPU) forwardStep(asid uint16, a workload.Access) {
	v := addr.VPNOf(a.VA)
	if c.cfg.Midgard {
		//lint:allow addrtypes Midgard's cache hierarchy is indexed by the intermediate (virtual) address, so the VA bits are reinterpreted as the cache key on purpose
		raw := c.caches.Access(addr.PA(a.VA), false)
		if raw > c.cfg.Cache.L3.LatencyCycles {
			c.forwardTranslate(asid, v)
		}
		return
	}
	entry, ok := c.forwardTranslate(asid, v)
	if !ok {
		return
	}
	pa := addr.Translate(a.VA, entry.PPN(), entry.Size())
	c.caches.Access(pa, false)
}

// forwardTranslate performs translate's state operations — TLB probe, the
// walk with its memory requests charged to the caches, the TLB fill —
// without accounting. Returns the entry and whether the page is mapped.
// Verify-region requests are state operations like any other (the verify
// walk really touches the caches; only its latency overlaps), so the loop
// below deliberately spans critical and verify groups alike.
func (c *CPU) forwardTranslate(asid uint16, v addr.VPN) (pte.Entry, bool) {
	tr, hit := c.tlbs.Lookup(asid, v)
	if hit {
		return tr.Entry, true
	}
	out := c.walker.Walk(asid, v)
	for gi, groups := 0, out.NumGroups(); gi < groups; gi++ {
		for _, pa := range out.Group(gi) {
			c.caches.Access(pa, true)
		}
	}
	if !out.Found {
		return 0, false
	}
	c.tlbs.Fill(asid, v, out.Entry)
	return out.Entry, true
}

// step runs one access through the machine model — the per-access
// translate-then-access sequence shared by every access path. Each cycle
// component is charged to res.Cycles as it accrues; the return value is
// the access's end-to-end latency (the same components summed in accrual
// order), which the tail study consumes per request.
func (c *CPU) step(asid uint16, a workload.Access, instrs int, extra float64, res *Result) float64 {
	res.Instructions += uint64(instrs)
	res.Accesses++
	retire := float64(instrs) / c.cfg.IssueWidth
	lat := retire + extra
	res.Cycles += retire
	res.Cycles += extra

	v := addr.VPNOf(a.VA)

	if c.cfg.Midgard {
		return lat + c.stepMidgard(asid, a, v, res)
	}

	// 1. TLB, and on an L2 TLB miss 2. the page walk.
	entry, verify, fault := c.translate(asid, v, res, &lat)
	if fault {
		return lat
	}

	// 3. Data access, overlapped with the walk's verify suffix: the access
	// proceeds on the speculative translation while the verify walk runs, so
	// the pair costs max(verify, access) — only the suffix's excess over the
	// exposed data latency is charged, as walk cycles. Non-speculative
	// schemes have verify == 0 and take no extra float operations here.
	pa := addr.Translate(a.VA, entry.PPN(), entry.Size())
	dataLat := float64(c.caches.Access(pa, false)) * (1 - c.cfg.DataOverlap)
	if verify > dataLat {
		exposed := verify - dataLat
		res.WalkCycles += exposed
		res.Cycles += exposed
		lat += exposed
	}
	res.Cycles += dataLat
	return lat + dataLat
}

// stepMidgard handles one access in the Midgard model: the cache hierarchy
// is indexed by the intermediate (virtual) address, so hits need no
// translation at all; only LLC misses trigger a radix walk to reach DRAM.
// It returns the latency charged beyond the instruction-retire component.
func (c *CPU) stepMidgard(asid uint16, a workload.Access, v addr.VPN, res *Result) float64 {
	// VMA-level Midgard translation is a handful of registers: free.
	//lint:allow addrtypes Midgard's cache hierarchy is indexed by the intermediate (virtual) address, so the VA bits are reinterpreted as the cache key on purpose
	raw := c.caches.Access(addr.PA(a.VA), false)
	llcMiss := raw > c.cfg.Cache.L3.LatencyCycles
	dataLat := float64(raw) * (1 - c.cfg.DataOverlap)
	res.Cycles += dataLat
	lat := dataLat
	if !llcMiss {
		return lat
	}
	// LLC miss: translate to reach memory (backside radix walk). The data
	// access already completed, so a verify suffix would have nothing to
	// overlap with — charge it in full (radix walks never carry one; verify
	// stays zero on this path today).
	_, verify, _ := c.translate(asid, v, res, &lat)
	if verify != 0 {
		res.WalkCycles += verify
		res.Cycles += verify
		lat += verify
	}
	return lat
}

// Snapshot implements metrics.Source: the uniform component snapshot of
// the whole core — TLB hierarchy under "tlb.", cache hierarchy under
// "cache.", memory model under "dram.", and the scheme walker's walk
// caches under "walk." (every scheme walker is a metrics.Source).
func (c *CPU) Snapshot() metrics.Set {
	var s metrics.Set
	s.Merge("tlb", c.tlbs.Snapshot())
	s.Merge("cache", c.caches.Snapshot())
	s.Merge("dram", c.caches.DRAM().Snapshot())
	if src, ok := c.walker.(metrics.Source); ok {
		s.Merge("walk", src.Snapshot())
	}
	return s
}

var _ metrics.Source = (*CPU)(nil)

// finish derives the Result's rate and traffic fields from the component
// snapshot — Result is a thin derivation over the metrics layer, not a
// separate accounting. In delta mode (RunFrom with start > 0) component
// counters are reported relative to base, the snapshot taken when the
// measured region began; component snapshots emit counters only (no
// gauges), so the subtraction is lossless, and the derived rates below are
// recomputed from the deltas.
func (c *CPU) finish(res *Result, base metrics.Set, delta bool) {
	s := c.Snapshot()
	if delta {
		s = s.Delta(base)
	}
	res.L2TLBMiss = stats.Ratio(s.Uint("tlb.l2.misses"),
		s.Uint("tlb.l2.hits")+s.Uint("tlb.l2.misses"))
	mpki := func(level string) float64 {
		return stats.PerKilo(s.Uint("cache."+level+".demand_misses")+
			s.Uint("cache."+level+".walk_misses"), res.Instructions)
	}
	res.L1MPKI = mpki("l1")
	res.L2MPKI = mpki("l2")
	res.L3MPKI = mpki("l3")
	res.DRAMAccesses = s.Uint("dram.accesses")

	// Fold the run-level counters and derived rates into the snapshot so a
	// Result carries the complete, self-describing metric set.
	s.Counter("run.instructions", res.Instructions)
	s.Counter("run.accesses", res.Accesses)
	s.Counter("run.faults", res.Faults)
	s.Counter("run.l1_tlb_misses", res.L1TLBMisses)
	s.Counter("run.l2_tlb_misses", res.L2TLBMisses)
	s.Counter("walk.walks", res.Walks)
	s.Counter("walk.refs", res.WalkRefs)
	s.Gauge("run.cycles", res.Cycles)
	s.Gauge("run.tlb_cycles", res.TLBCycles)
	s.Gauge("run.walk_cycles", res.WalkCycles)
	s.Gauge("tlb.l2.miss_rate", res.L2TLBMiss)
	s.Gauge("cache.l1.mpki", res.L1MPKI)
	s.Gauge("cache.l2.mpki", res.L2MPKI)
	s.Gauge("cache.l3.mpki", res.L3MPKI)
	res.Metrics = s
}

// Speedup returns base cycles / this cycles.
func Speedup(base, other Result) float64 {
	if other.Cycles == 0 {
		return 0
	}
	return base.Cycles / other.Cycles
}

// String renders the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s: %.0f cycles, MMU %.1f%% (walk %.1f%%), %.2f refs/walk, L2TLB miss %.1f%%, L2 MPKI %.2f, L3 MPKI %.2f",
		r.Workload, r.Scheme, r.Cycles,
		100*r.MMUCycles()/r.Cycles, 100*r.WalkCycles/r.Cycles,
		stats.Ratio(r.WalkRefs, r.Walks),
		100*r.L2TLBMiss, r.L2MPKI, r.L3MPKI)
}
