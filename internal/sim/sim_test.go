package sim

import (
	"testing"

	"lvm/internal/oskernel"
	"lvm/internal/phys"
	"lvm/internal/workload"
)

// runScheme builds a workload and simulates it under one scheme.
func runScheme(t *testing.T, name string, scheme oskernel.Scheme, thp bool) Result {
	return runSchemeP(t, name, scheme, thp, workload.QuickParams())
}

// perfParams puts the quick workloads into the paper's regime: footprints
// beyond the L2 TLB reach (8 MB) and the radix PDE-cache reach (64 MB), so
// page walks actually matter.
func perfParams() workload.Params {
	p := workload.QuickParams()
	p.GUPSTableBytes = 2 << 30
	p.MemcachedBytes = 1 << 30
	p.TraceLen = 120_000
	return p
}

func runSchemeP(t *testing.T, name string, scheme oskernel.Scheme, thp bool, p workload.Params) Result {
	t.Helper()
	w, err := workload.Build(name, p)
	if err != nil {
		t.Fatal(err)
	}
	mem := phys.New(4 << 30)
	sys := oskernel.NewSystem(mem, scheme)
	if _, err := sys.Launch(1, w.Space, thp); err != nil {
		t.Fatalf("%s/%s: %v", name, scheme, err)
	}
	cfg := DefaultConfig()
	cfg.Midgard = scheme == oskernel.SchemeMidgard
	cpu := New(cfg, sys.Walker())
	return cpu.Run(1, w)
}

func TestNoFaultsAnyScheme(t *testing.T) {
	for _, scheme := range oskernel.AllSchemes() {
		r := runScheme(t, "bfs", scheme, false)
		if r.Faults != 0 {
			t.Errorf("%s: %d translation faults", scheme, r.Faults)
		}
		if r.Cycles <= 0 || r.Instructions == 0 {
			t.Errorf("%s: empty result", scheme)
		}
	}
}

func TestIdealIsSingleAccess(t *testing.T) {
	r := runSchemeP(t, "gups", oskernel.SchemeIdeal, false, perfParams())
	if got := float64(r.WalkRefs) / float64(r.Walks); got != 1 {
		t.Errorf("ideal refs/walk = %v, must be exactly 1", got)
	}
}

func TestRadixWalkRefsBounded(t *testing.T) {
	r := runSchemeP(t, "gups", oskernel.SchemeRadix, false, perfParams())
	refsPerWalk := float64(r.WalkRefs) / float64(r.Walks)
	if refsPerWalk < 1 || refsPerWalk > 4 {
		t.Errorf("radix refs/walk = %v, must be in [1,4]", refsPerWalk)
	}
}

func TestECPTTrafficExceedsRadix(t *testing.T) {
	// Figure 11's core claim: ECPT trades latency for traffic.
	rad := runSchemeP(t, "gups", oskernel.SchemeRadix, false, perfParams())
	ec := runSchemeP(t, "gups", oskernel.SchemeECPT, false, perfParams())
	if ec.WalkRefs <= rad.WalkRefs {
		t.Errorf("ECPT walk refs (%d) must exceed radix (%d)", ec.WalkRefs, rad.WalkRefs)
	}
}

func TestLVMTrafficNearIdeal(t *testing.T) {
	// Figure 11: LVM within ~1% of ideal page-walk traffic.
	lvm := runSchemeP(t, "gups", oskernel.SchemeLVM, false, perfParams())
	id := runSchemeP(t, "gups", oskernel.SchemeIdeal, false, perfParams())
	lvmRefs := float64(lvm.WalkRefs) / float64(lvm.Walks)
	idRefs := float64(id.WalkRefs) / float64(id.Walks)
	if lvmRefs > idRefs*1.10 {
		t.Errorf("LVM refs/walk %.3f vs ideal %.3f: more than 10%% above", lvmRefs, idRefs)
	}
}

func TestSpeedupOrdering(t *testing.T) {
	// Figure 9's shape on the most translation-bound workload: ideal ≥
	// LVM > radix, and LVM ≥ ECPT.
	rad := runSchemeP(t, "gups", oskernel.SchemeRadix, false, perfParams())
	ec := runSchemeP(t, "gups", oskernel.SchemeECPT, false, perfParams())
	lvm := runSchemeP(t, "gups", oskernel.SchemeLVM, false, perfParams())
	id := runSchemeP(t, "gups", oskernel.SchemeIdeal, false, perfParams())

	if !(lvm.Cycles < rad.Cycles) {
		t.Errorf("LVM (%.0f cycles) must beat radix (%.0f)", lvm.Cycles, rad.Cycles)
	}
	if !(id.Cycles <= lvm.Cycles*1.02) {
		t.Errorf("ideal (%.0f) must be ≤ LVM (%.0f)", id.Cycles, lvm.Cycles)
	}
	if lvm.Cycles > ec.Cycles*1.02 {
		t.Errorf("LVM (%.0f) should not lose to ECPT (%.0f)", lvm.Cycles, ec.Cycles)
	}
}

func TestTHPReducesWalkCycles(t *testing.T) {
	base := runSchemeP(t, "gups", oskernel.SchemeRadix, false, perfParams())
	thp := runSchemeP(t, "gups", oskernel.SchemeRadix, true, perfParams())
	if thp.WalkCycles >= base.WalkCycles {
		t.Errorf("THP walk cycles (%.0f) must be below 4K (%.0f)", thp.WalkCycles, base.WalkCycles)
	}
}

func TestL2TLBMissRateSchemeIndependent(t *testing.T) {
	// §7.2: TLB miss rates are nearly identical across schemes.
	rad := runScheme(t, "bfs", oskernel.SchemeRadix, false)
	lvm := runScheme(t, "bfs", oskernel.SchemeLVM, false)
	diff := rad.L2TLBMiss - lvm.L2TLBMiss
	if diff > 0.01 || diff < -0.01 {
		t.Errorf("L2 TLB miss rates diverge: radix %.3f vs lvm %.3f", rad.L2TLBMiss, lvm.L2TLBMiss)
	}
}

func TestMidgardSavesMMUWork(t *testing.T) {
	// §7.5.2: Midgard needs translation only on LLC misses; its MMU
	// overhead must undercut radix (hot data served by VMA translation).
	mid := runSchemeP(t, "mem$", oskernel.SchemeMidgard, false, perfParams())
	rad := runSchemeP(t, "mem$", oskernel.SchemeRadix, false, perfParams())
	if mid.Walks > rad.Walks {
		t.Errorf("Midgard walks (%d) must not exceed radix (%d)", mid.Walks, rad.Walks)
	}
	if mid.MMUCycles() >= rad.MMUCycles() {
		t.Errorf("Midgard MMU cycles (%.0f) must undercut radix (%.0f)", mid.MMUCycles(), rad.MMUCycles())
	}
}

func TestPTWL1IncreasesL1MPKI(t *testing.T) {
	// §7.2: connecting the PTW to L1 raises L1 MPKI.
	w, _ := workload.Build("gups", workload.QuickParams())
	for _, entry := range []int{1, 2} {
		mem := phys.New(512 << 20)
		sys := oskernel.NewSystem(mem, oskernel.SchemeRadix)
		sys.Launch(1, w.Space, false)
		cfg := DefaultConfig()
		cfg.Cache.WalkEntryLevel = entry
		cpu := New(cfg, sys.Walker())
		r := cpu.Run(1, w)
		if entry == 1 && r.L1MPKI == 0 {
			t.Error("no L1 misses recorded")
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := runScheme(t, "mem$", oskernel.SchemeLVM, false)
	b := runScheme(t, "mem$", oskernel.SchemeLVM, false)
	if a.Cycles != b.Cycles || a.WalkRefs != b.WalkRefs {
		t.Error("simulation is not deterministic")
	}
}

func TestResultString(t *testing.T) {
	r := runScheme(t, "bfs", oskernel.SchemeRadix, false)
	if s := r.String(); len(s) == 0 {
		t.Error("empty string")
	}
}
