package sim

import (
	"math"
	"testing"

	"lvm/internal/oskernel"
	"lvm/internal/phys"
	"lvm/internal/workload"
)

// launchCPU builds a workload and a fresh system and returns the bound CPU
// so tests can inspect its components after running.
func launchCPU(t *testing.T, name string, scheme oskernel.Scheme) (*CPU, *workload.Workload) {
	t.Helper()
	w, err := workload.Build(name, workload.QuickParams())
	if err != nil {
		t.Fatal(err)
	}
	mem := phys.New(4 << 30)
	sys := oskernel.NewSystem(mem, scheme)
	if _, err := sys.Launch(1, w.Space, false); err != nil {
		t.Fatalf("%s/%s: %v", name, scheme, err)
	}
	return New(DefaultConfig(), sys.Walker()), w
}

// The Result refactor's contract: every derived field must match the
// component accessors it used to be computed from, bit for bit.
func TestResultDerivedFieldsMatchAccessors(t *testing.T) {
	for _, scheme := range []oskernel.Scheme{oskernel.SchemeRadix, oskernel.SchemeLVM} {
		cpu, w := launchCPU(t, "bfs", scheme)
		res := cpu.Run(1, w)

		if got, want := res.L2TLBMiss, cpu.TLBs().L2MissRate(); got != want {
			t.Errorf("%s: L2TLBMiss %v != L2MissRate %v", scheme, got, want)
		}
		for level, got := range map[int]float64{1: res.L1MPKI, 2: res.L2MPKI, 3: res.L3MPKI} {
			if want := cpu.Caches().MPKI(level, res.Instructions); got != want {
				t.Errorf("%s: L%dMPKI %v != Caches().MPKI %v", scheme, level, got, want)
			}
		}
		if got, want := res.DRAMAccesses, cpu.Caches().DRAM().Accesses(); got != want {
			t.Errorf("%s: DRAMAccesses %d != DRAM().Accesses %d", scheme, got, want)
		}
	}
}

func TestResultSnapshotCarriesRunCounters(t *testing.T) {
	cpu, w := launchCPU(t, "bfs", oskernel.SchemeLVM)
	res := cpu.Run(1, w)
	m := res.Snapshot()

	uints := map[string]uint64{
		"run.instructions":  res.Instructions,
		"run.accesses":      res.Accesses,
		"run.faults":        res.Faults,
		"run.l1_tlb_misses": res.L1TLBMisses,
		"run.l2_tlb_misses": res.L2TLBMisses,
		"walk.walks":        res.Walks,
		"walk.refs":         res.WalkRefs,
		"dram.accesses":     res.DRAMAccesses,
	}
	for name, want := range uints {
		if got := m.Uint(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	gauges := map[string]float64{
		"run.cycles":       res.Cycles,
		"run.tlb_cycles":   res.TLBCycles,
		"run.walk_cycles":  res.WalkCycles,
		"tlb.l2.miss_rate": res.L2TLBMiss,
		"cache.l1.mpki":    res.L1MPKI,
		"cache.l2.mpki":    res.L2MPKI,
		"cache.l3.mpki":    res.L3MPKI,
	}
	for name, want := range gauges {
		if got := m.Float(name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	// The TLB-side counters come from the hierarchy itself; each run-loop
	// L2 miss probes one or more per-size L2 TLBs, so the component count
	// bounds the loop count from above.
	if res.L2TLBMisses > 0 && m.Uint("tlb.l2.misses") < res.L2TLBMisses {
		t.Errorf("tlb.l2.misses %d < run-loop L2 misses %d", m.Uint("tlb.l2.misses"), res.L2TLBMisses)
	}
}

// RunIntervals must produce the same Result as Run (the observer must not
// perturb the simulation) and window deltas that sum to the final
// cumulative counters.
func TestRunIntervalsMatchesRunAndSums(t *testing.T) {
	cpuA, w := launchCPU(t, "gups", oskernel.SchemeRadix)
	want := cpuA.Run(1, w)

	cpuB, _ := launchCPU(t, "gups", oskernel.SchemeRadix)
	got, ivs := cpuB.RunIntervals(1, w, len(w.Accesses)/7)

	if got.Cycles != want.Cycles || got.Instructions != want.Instructions ||
		got.Walks != want.Walks || got.WalkRefs != want.WalkRefs ||
		got.L2TLBMisses != want.L2TLBMisses || got.DRAMAccesses != want.DRAMAccesses {
		t.Errorf("RunIntervals result diverged from Run:\n got %+v\nwant %+v", got, want)
	}
	if len(ivs) == 0 {
		t.Fatal("no intervals")
	}
	if first, last := ivs[0], ivs[len(ivs)-1]; first.Start != 0 || last.End != len(w.Accesses) {
		t.Errorf("intervals span [%d,%d), want [0,%d)", first.Start, last.End, len(w.Accesses))
	}
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Start != ivs[i-1].End {
			t.Errorf("interval %d starts at %d, previous ended at %d", i, ivs[i].Start, ivs[i-1].End)
		}
	}
	final := cpuB.Snapshot()
	for _, v := range final.Sorted() {
		var sum uint64
		for _, iv := range ivs {
			sum += iv.Metrics.Uint(v.Name)
		}
		if sum != v.Uint {
			t.Errorf("%s: interval deltas sum to %d, cumulative %d", v.Name, sum, v.Uint)
		}
	}
}

// RunTail with a nil hook must agree with Run, and the per-access
// latencies must account for the total cycle count.
func TestRunTailAgreesWithRun(t *testing.T) {
	cpuA, w := launchCPU(t, "bfs", oskernel.SchemeLVM)
	want := cpuA.Run(1, w)

	cpuB, _ := launchCPU(t, "bfs", oskernel.SchemeLVM)
	got, lats := cpuB.RunTail(1, w, nil)

	if got.Instructions != want.Instructions || got.Walks != want.Walks ||
		got.L2TLBMisses != want.L2TLBMisses {
		t.Errorf("RunTail result diverged from Run:\n got %+v\nwant %+v", got, want)
	}
	if len(lats) != len(w.Accesses) {
		t.Fatalf("%d latencies for %d accesses", len(lats), len(w.Accesses))
	}
	var sum float64
	for _, l := range lats {
		sum += l
	}
	if rel := math.Abs(sum-got.Cycles) / got.Cycles; rel > 0.01 {
		t.Errorf("latency sum %v vs cycles %v (rel %v)", sum, got.Cycles, rel)
	}
}
