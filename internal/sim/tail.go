package sim

import (
	"lvm/internal/addr"
	"lvm/internal/workload"
)

// RunTail simulates a trace like Run but additionally returns the cycle
// cost of every access (request latency, for the §7.3 memcached tail
// study) and invokes hook before each access; the hook returns extra
// cycles to charge to that access — the experiment harness uses it to
// inject OS-side LVM management work (inserts, retrains) and observe the
// effect on tail latency.
func (c *CPU) RunTail(asid uint16, w *workload.Workload, hook func(i int) float64) (Result, []float64) {
	res := Result{Workload: w.Name, Scheme: c.walker.Name()}
	latencies := make([]float64, 0, len(w.Accesses))
	instrs := w.InstrsPerAccess
	for i, a := range w.Accesses {
		res.Instructions += uint64(instrs)
		res.Accesses++
		lat := float64(instrs) / c.cfg.IssueWidth
		if hook != nil {
			lat += hook(i)
		}

		v := addr.VPNOf(a.VA)
		tr, hit := c.tlbs.Lookup(asid, v)
		res.TLBCycles += float64(tr.Latency)
		lat += float64(tr.Latency)
		entry := tr.Entry
		if !hit {
			res.L2TLBMisses++
			out := c.walker.Walk(asid, v)
			res.Walks++
			res.WalkRefs += uint64(out.Refs())
			wl := c.walkLatency(out)
			res.WalkCycles += wl
			lat += wl
			if !out.Found {
				res.Faults++
				res.Cycles += lat
				latencies = append(latencies, lat)
				continue
			}
			entry = out.Entry
			c.tlbs.Fill(asid, v, entry)
		}
		if !tr.HitL1 {
			res.L1TLBMisses++
		}
		pa := addr.Translate(a.VA, entry.PPN(), entry.Size())
		lat += float64(c.caches.Access(pa, false)) * (1 - c.cfg.DataOverlap)

		res.Cycles += lat
		latencies = append(latencies, lat)
	}
	c.finish(&res)
	return res, latencies
}
