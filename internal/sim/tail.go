package sim

import (
	"lvm/internal/metrics"
	"lvm/internal/workload"
)

// RunTail simulates a trace like Run but additionally returns the cycle
// cost of every access (request latency, for the §7.3 memcached tail
// study) and invokes hook before each access; the hook returns extra
// cycles to charge to that access — the experiment harness uses it to
// inject OS-side LVM management work (inserts, retrains) and observe the
// effect on tail latency. The hook runs before the access touches the
// TLB, so hook-driven map/unmap churn (and its shootdowns) is visible to
// the access that follows it.
func (c *CPU) RunTail(asid uint16, w *workload.Workload, hook func(i int) float64) (Result, []float64) {
	latencies := make([]float64, len(w.Accesses))
	res := c.run(asid, w, runOpts{hook: hook, lats: latencies})
	return res, latencies
}

// Interval is one window of an interval-snapshotted run: the component
// counters that accrued during the window (a metrics.Delta of the CPU
// snapshot) plus the window's position in the trace.
type Interval struct {
	// Start and End are the access-index half-open range [Start, End).
	Start, End int
	// Metrics holds the counter deltas for the window, under the same
	// names as CPU.Snapshot (tlb.*, cache.*, dram.*, walk.*).
	Metrics metrics.Set
}

// RunIntervals simulates a trace like Run and additionally cuts the
// component counters into windows of `every` accesses: each Interval's
// Metrics is the snapshot delta over that window, so phase behaviour
// (TLB miss bursts, walk-cache warmup) is visible without the caller
// re-deriving its own accounting. A non-positive `every` yields a single
// interval spanning the whole trace.
func (c *CPU) RunIntervals(asid uint16, w *workload.Workload, every int) (Result, []Interval) {
	if every <= 0 {
		every = len(w.Accesses)
	}
	var intervals []Interval
	prev := c.Snapshot()
	start := 0
	cut := func(end int) {
		cur := c.Snapshot()
		intervals = append(intervals, Interval{
			Start:   start,
			End:     end,
			Metrics: cur.Delta(prev),
		})
		prev = cur
		start = end
	}
	res := c.run(asid, w, runOpts{every: every, cut: cut})
	if start < len(w.Accesses) {
		cut(len(w.Accesses))
	}
	return res, intervals
}
