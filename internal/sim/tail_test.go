package sim

import (
	"sort"
	"testing"

	"lvm/internal/oskernel"
	"lvm/internal/phys"
	"lvm/internal/workload"
)

// tailSetup builds a workload and a CPU ready for RunTail.
func tailSetup(t *testing.T) (*CPU, *workload.Workload) {
	t.Helper()
	p := workload.QuickParams()
	p.TraceLen = 30_000
	w, err := workload.Build("mem$", p)
	if err != nil {
		t.Fatal(err)
	}
	sys := oskernel.NewSystem(phys.New(2<<30), oskernel.SchemeLVM)
	if _, err := sys.Launch(1, w.Space, false); err != nil {
		t.Fatal(err)
	}
	return New(DefaultConfig(), sys.Walker()), w
}

// TestRunTailMatchesRun: with a nil hook, RunTail must produce one latency
// per access, each latency must be positive, and their sum must equal the
// aggregate cycle count it reports.
func TestRunTailMatchesRun(t *testing.T) {
	cpu, w := tailSetup(t)
	res, lats := cpu.RunTail(1, w, nil)
	if len(lats) != len(w.Accesses) {
		t.Fatalf("%d latencies for %d accesses", len(lats), len(w.Accesses))
	}
	var sum float64
	for i, l := range lats {
		if l <= 0 {
			t.Fatalf("access %d: non-positive latency %v", i, l)
		}
		sum += l
	}
	// Cycles accumulates exactly the per-access latencies (minus any
	// overlapped data latency, which Run credits identically).
	if sum <= 0 || res.Cycles <= 0 {
		t.Fatal("empty tail run")
	}
	if diff := (sum - res.Cycles) / res.Cycles; diff > 0.01 || diff < -0.01 {
		t.Errorf("latency sum %.0f deviates from cycles %.0f by %.2f%%",
			sum, res.Cycles, 100*diff)
	}
}

// TestRunTailHookCharged: hook cycles must land on exactly the accesses
// the hook targets — visible in the per-access latencies and the total.
func TestRunTailHookCharged(t *testing.T) {
	cpu, w := tailSetup(t)
	_, base := cpu.RunTail(1, w, nil)

	cpu2, w2 := tailSetup(t)
	const charge = 5000.0
	_, spiked := cpu2.RunTail(1, w2, func(i int) float64 {
		if i%1000 == 0 {
			return charge
		}
		return 0
	})
	for i := range spiked {
		d := spiked[i] - base[i]
		if i%1000 == 0 {
			if d < charge {
				t.Fatalf("access %d: hook charge missing (delta %.0f)", i, d)
			}
		} else if d > charge/10 {
			t.Fatalf("access %d: unhooked access inflated by %.0f", i, d)
		}
	}
}

// TestRunTailPercentileShift: a hook charging every 512th request (the
// §7.3 churn pattern) must move the p99.9+ tail while leaving the median
// untouched — the property the tail-latency experiment interprets.
func TestRunTailPercentileShift(t *testing.T) {
	pctl := func(ls []float64, q float64) float64 {
		s := append([]float64(nil), ls...)
		sort.Float64s(s)
		return s[int(q*float64(len(s)-1))]
	}
	cpu, w := tailSetup(t)
	_, base := cpu.RunTail(1, w, nil)
	cpu2, w2 := tailSetup(t)
	_, churn := cpu2.RunTail(1, w2, func(i int) float64 {
		if i%512 == 0 {
			return 1e6
		}
		return 0
	})
	if p50b, p50c := pctl(base, 0.50), pctl(churn, 0.50); p50c != p50b {
		t.Errorf("median moved under churn: %.1f -> %.1f", p50b, p50c)
	}
	if hi := pctl(churn, 0.999); hi < 1e6 {
		t.Errorf("p99.9 %.0f does not reflect the churn spikes", hi)
	}
}
