// Package stats provides the counters and summary helpers shared by the
// simulator, the page-table schemes, and the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Ratio safely divides two counts, returning 0 for an empty denominator.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// PerKilo returns events per thousand units (e.g. MPKI: misses per kilo
// instructions).
func PerKilo(events, units uint64) float64 {
	if units == 0 {
		return 0
	}
	return float64(events) * 1000 / float64(units)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, the conventional aggregate for
// speedup figures. Non-positive inputs are rejected with a panic because a
// speedup can never be ≤ 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: non-positive speedup %v", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Min returns the minimum of xs (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) of xs using nearest-rank
// on a sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Histogram is a fixed-bucket histogram for small integer observations such
// as "extra memory accesses per collision".
type Histogram struct {
	buckets []uint64
	total   uint64
	sum     uint64
}

// NewHistogram creates a histogram with buckets 0..max (observations above
// max land in the last bucket).
func NewHistogram(max int) *Histogram {
	return &Histogram{buckets: make([]uint64, max+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	h.buckets[v]++
	h.total++
	h.sum += uint64(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the mean observation.
func (h *Histogram) Mean() float64 { return Ratio(h.sum, h.total) }

// Bucket returns the count in bucket v.
func (h *Histogram) Bucket(v int) uint64 {
	if v < 0 || v >= len(h.buckets) {
		return 0
	}
	return h.buckets[v]
}

// MaxObserved returns the largest non-empty bucket index.
func (h *Histogram) MaxObserved() int {
	for i := len(h.buckets) - 1; i >= 0; i-- {
		if h.buckets[i] > 0 {
			return i
		}
	}
	return 0
}

// Table is a simple fixed-width text table used by the experiment harness
// to print paper-style rows.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
