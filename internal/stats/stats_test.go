package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Errorf("reset counter = %d", c.Value())
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("divide by zero must be 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Errorf("Ratio(3,4) = %v", Ratio(3, 4))
	}
}

func TestPerKilo(t *testing.T) {
	if got := PerKilo(44, 1000); got != 44 {
		t.Errorf("MPKI = %v", got)
	}
	if got := PerKilo(1, 0); got != 0 {
		t.Errorf("PerKilo with zero units = %v", got)
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("mean = %v", Mean(xs))
	}
	if Min(xs) != 1 || Max(xs) != 4 {
		t.Errorf("min/max = %v/%v", Min(xs), Max(xs))
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty slices must give 0")
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("GeoMean must reject non-positive values")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(3)
	for _, v := range []int{0, 1, 1, 2, 3, 9, -1} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Bucket(1) != 2 {
		t.Errorf("bucket 1 = %d", h.Bucket(1))
	}
	if h.Bucket(3) != 2 { // 3 and clamped 9
		t.Errorf("bucket 3 = %d", h.Bucket(3))
	}
	if h.Bucket(0) != 2 { // 0 and clamped -1
		t.Errorf("bucket 0 = %d", h.Bucket(0))
	}
	if h.MaxObserved() != 3 {
		t.Errorf("max observed = %d", h.MaxObserved())
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(10)
	h.Observe(2)
	h.Observe(4)
	if h.Mean() != 3 {
		t.Errorf("mean = %v", h.Mean())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("workload", "speedup")
	tb.AddRow("bfs", 1.14)
	tb.AddRow("gups", 1.26)
	out := tb.String()
	if !strings.Contains(out, "workload") || !strings.Contains(out, "1.140") {
		t.Errorf("table output missing content:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Errorf("expected 4 lines:\n%s", out)
	}
}

func TestQuickGeoMeanBetweenMinMax(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = 0.5 + float64(r)/1000
		}
		g := GeoMean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
