// Package tlb models set-associative, ASID-tagged translation lookaside
// buffers with LRU replacement, matching the Table-1 configuration: split
// L1 I/D TLBs per page size and large L2 TLBs.
//
// TLB behaviour is scheme-independent (the paper notes L2 TLB miss rates
// are identical across radix, ECPT and LVM); the schemes differ only in
// what happens after an L2 TLB miss.
package tlb

import (
	"math/bits"
	"strings"

	"lvm/internal/addr"
	"lvm/internal/metrics"
	"lvm/internal/pte"
	"lvm/internal/stats"
)

// Entry is one cached translation.
type entry struct {
	valid bool
	asid  uint16
	tag   addr.VPN // page-size-aligned VPN
	e     pte.Entry
}

// TLB is one set-associative TLB for a single page size.
type TLB struct {
	size     addr.PageSize
	ways     int
	setShift uint
	sets     [][]entry // each set ordered most-recent-first

	hits, misses stats.Counter
}

// New creates a TLB with the given total entries and associativity for one
// page size.
func New(entries, ways int, size addr.PageSize) *TLB {
	if entries%ways != 0 {
		//lint:allow nopanic compile-time geometry from sim.Config, never reachable from run inputs
		panic("tlb: entries must be a multiple of ways")
	}
	nsets := entries / ways
	if nsets&(nsets-1) != 0 {
		//lint:allow nopanic compile-time geometry from sim.Config, never reachable from run inputs
		panic("tlb: set count must be a power of two")
	}
	t := &TLB{size: size, ways: ways, sets: make([][]entry, nsets)}
	for i := range t.sets {
		t.sets[i] = make([]entry, 0, ways)
	}
	// setShift: index by the low bits of the size-aligned VPN. BaseVPNs is
	// a power of two, so the per-lookup division reduces to this shift.
	t.setShift = uint(bits.TrailingZeros64(size.BaseVPNs()))
	return t
}

// PageSize returns the page size this TLB caches.
func (t *TLB) PageSize() addr.PageSize { return t.size }

func (t *TLB) setIndex(tag addr.VPN) int {
	v := uint64(tag) >> t.setShift
	return int(v & uint64(len(t.sets)-1))
}

// Lookup returns the cached translation for the VPN, if present. The VPN is
// aligned internally to the TLB's page size.
func (t *TLB) Lookup(asid uint16, v addr.VPN) (pte.Entry, bool) {
	tag := addr.AlignDown(v, t.size)
	set := t.sets[t.setIndex(tag)]
	for i, e := range set {
		if e.valid && e.asid == asid && e.tag == tag {
			// Move to front (LRU).
			copy(set[1:i+1], set[:i])
			set[0] = e
			t.hits.Inc()
			return e.e, true
		}
	}
	t.misses.Inc()
	return 0, false
}

// Insert caches a translation, evicting the LRU way if needed.
func (t *TLB) Insert(asid uint16, v addr.VPN, e pte.Entry) {
	tag := addr.AlignDown(v, t.size)
	idx := t.setIndex(tag)
	set := t.sets[idx]
	for i, old := range set {
		if old.valid && old.asid == asid && old.tag == tag {
			set[i] = entry{valid: true, asid: asid, tag: tag, e: e}
			copy(set[1:i+1], set[:i])
			set[0] = entry{valid: true, asid: asid, tag: tag, e: e}
			return
		}
	}
	ne := entry{valid: true, asid: asid, tag: tag, e: e}
	if len(set) < t.ways {
		//lint:allow hotalloc append bounded by ways; sets reach capacity during warmup and never grow again
		set = append(set, entry{})
		copy(set[1:], set[:len(set)-1])
		set[0] = ne
		t.sets[idx] = set
		return
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = ne
}

// Invalidate drops the translation for one VPN (TLB shootdown).
func (t *TLB) Invalidate(asid uint16, v addr.VPN) {
	tag := addr.AlignDown(v, t.size)
	set := t.sets[t.setIndex(tag)]
	for i := range set {
		if set[i].valid && set[i].asid == asid && set[i].tag == tag {
			set[i].valid = false
		}
	}
}

// FlushASID drops every translation of one address space.
func (t *TLB) FlushASID(asid uint16) {
	for _, set := range t.sets {
		for i := range set {
			if set[i].asid == asid {
				set[i].valid = false
			}
		}
	}
}

// Hits returns the hit count.
func (t *TLB) Hits() uint64 { return t.hits.Value() }

// Misses returns the miss count.
func (t *TLB) Misses() uint64 { return t.misses.Value() }

// MissRate returns misses / lookups.
func (t *TLB) MissRate() float64 {
	return stats.Ratio(t.misses.Value(), t.hits.Value()+t.misses.Value())
}

// ResetStats clears the counters (entries stay).
func (t *TLB) ResetStats() {
	t.hits.Reset()
	t.misses.Reset()
}

// Snapshot implements metrics.Source: the TLB's hit/miss counters.
func (t *TLB) Snapshot() metrics.Set {
	var s metrics.Set
	s.Counter("hits", t.hits.Value())
	s.Counter("misses", t.misses.Value())
	return s
}

// Hierarchy is the paper's two-level TLB organization: per-page-size L1
// TLBs and per-page-size L2 TLBs.
type Hierarchy struct {
	L1 []*TLB
	L2 []*TLB
	// L1Latency and L2Latency are lookup latencies in cycles; L1 lookup
	// is folded into the pipeline (0 extra), L2 adds a few cycles.
	L2Latency int
}

// NewHierarchy builds the Table-1 TLB configuration: L1 64-entry 4-way per
// size (4K and 2M), L2 2048 entries per size. Table 1 specifies 12-way L2
// associativity; we use 8-way so set counts stay powers of two — at 2048
// entries the miss behaviour is indistinguishable for these workloads.
func NewHierarchy() *Hierarchy {
	return NewHierarchySized(64, 32, 2048, 2048)
}

// NewHierarchySized builds a hierarchy with custom entry counts: l1Small /
// l1Huge are the per-size L1 capacities, l2Small / l2Huge the per-size L2
// capacities. Used by the scaled machine model (footprints are scaled down
// from the paper's testbed, so TLB reach scales proportionally — and the
// 2 MB side scales by its own reach ratio).
func NewHierarchySized(l1Small, l1Huge, l2Small, l2Huge int) *Hierarchy {
	return &Hierarchy{
		L1: []*TLB{
			New(l1Small, 4, addr.Page4K),
			New(l1Huge, 4, addr.Page2M),
		},
		L2: []*TLB{
			New(l2Small, 8, addr.Page4K),
			New(l2Huge, 8, addr.Page2M),
		},
		L2Latency: 7,
	}
}

// Result describes where a lookup hit.
type Result struct {
	Entry   pte.Entry
	HitL1   bool
	HitL2   bool
	Latency int // extra cycles beyond a pipelined L1 hit
}

// Lookup probes L1 then L2 TLBs of every page size.
func (h *Hierarchy) Lookup(asid uint16, v addr.VPN) (Result, bool) {
	for _, t := range h.L1 {
		if e, ok := t.Lookup(asid, v); ok {
			// Validate granularity: a 4K TLB must not answer for VPNs it
			// cached under a different entry size (sizes are per-TLB, so
			// the tag check suffices).
			return Result{Entry: e, HitL1: true}, true
		}
	}
	for _, t := range h.L2 {
		if e, ok := t.Lookup(asid, v); ok {
			h.fillL1(asid, v, e)
			return Result{Entry: e, HitL2: true, Latency: h.L2Latency}, true
		}
	}
	return Result{Latency: h.L2Latency}, false
}

// Fill inserts a walked translation into the right L1 and L2 TLBs.
func (h *Hierarchy) Fill(asid uint16, v addr.VPN, e pte.Entry) {
	for _, t := range h.L2 {
		if t.PageSize() == e.Size() {
			t.Insert(asid, v, e)
		}
	}
	h.fillL1(asid, v, e)
}

func (h *Hierarchy) fillL1(asid uint16, v addr.VPN, e pte.Entry) {
	for _, t := range h.L1 {
		if t.PageSize() == e.Size() {
			t.Insert(asid, v, e)
		}
	}
}

// Shootdown invalidates one translation everywhere.
func (h *Hierarchy) Shootdown(asid uint16, v addr.VPN) {
	for _, t := range h.L1 {
		t.Invalidate(asid, v)
	}
	for _, t := range h.L2 {
		t.Invalidate(asid, v)
	}
}

// L2MissRate returns the combined L2 TLB miss rate (the walk trigger rate).
func (h *Hierarchy) L2MissRate() float64 {
	var hits, misses uint64
	for _, t := range h.L2 {
		hits += t.Hits()
		misses += t.Misses()
	}
	return stats.Ratio(misses, hits+misses)
}

// sizeLabel is the metric-namespace component for a page size ("4kb",
// "2mb"); names must stay stable, they are part of the JSON schema.
func sizeLabel(s addr.PageSize) string {
	return strings.ToLower(s.String())
}

// Snapshot implements metrics.Source. Per-TLB counters are namespaced by
// level and page size (tlb.l1.4kb.hits, ...); each level additionally
// carries its per-size sums (tlb.l2.hits, tlb.l2.misses — the walk-trigger
// accounting every figure derives rates from).
func (h *Hierarchy) Snapshot() metrics.Set {
	var s metrics.Set
	level := func(name string, tlbs []*TLB) {
		for _, t := range tlbs {
			snap := t.Snapshot()
			s.Merge(name+"."+sizeLabel(t.PageSize()), snap)
			s.Merge(name, snap)
		}
	}
	level("l1", h.L1)
	level("l2", h.L2)
	return s
}

var _ metrics.Source = (*Hierarchy)(nil)
