package tlb

import (
	"testing"

	"lvm/internal/addr"
	"lvm/internal/pte"
)

func TestLookupInsert(t *testing.T) {
	tl := New(64, 4, addr.Page4K)
	if _, ok := tl.Lookup(1, 100); ok {
		t.Fatal("empty TLB hit")
	}
	e := pte.New(0xff, addr.Page4K)
	tl.Insert(1, 100, e)
	got, ok := tl.Lookup(1, 100)
	if !ok || got != e {
		t.Fatalf("lookup after insert: ok=%t", ok)
	}
	if tl.Hits() != 1 || tl.Misses() != 1 {
		t.Errorf("hits=%d misses=%d", tl.Hits(), tl.Misses())
	}
}

func TestASIDIsolation(t *testing.T) {
	tl := New(64, 4, addr.Page4K)
	tl.Insert(1, 100, pte.New(1, addr.Page4K))
	if _, ok := tl.Lookup(2, 100); ok {
		t.Error("cross-ASID hit: context switches would leak translations")
	}
	// The original ASID still hits: no flush needed on context switch.
	if _, ok := tl.Lookup(1, 100); !ok {
		t.Error("original ASID lost")
	}
}

func TestLRUEviction(t *testing.T) {
	tl := New(4, 4, addr.Page4K) // one set
	for i := 0; i < 4; i++ {
		tl.Insert(1, addr.VPN(i*16), pte.New(addr.PPN(i), addr.Page4K))
	}
	// Touch entry 0 so it's MRU, then insert a 5th: entry for VPN 16 (LRU)
	// must be the victim.
	tl.Lookup(1, 0)
	tl.Insert(1, 64, pte.New(9, addr.Page4K))
	if _, ok := tl.Lookup(1, 0); !ok {
		t.Error("MRU entry evicted")
	}
	if _, ok := tl.Lookup(1, 16); ok {
		t.Error("LRU entry survived")
	}
}

func TestHugePageTagging(t *testing.T) {
	tl := New(32, 4, addr.Page2M)
	e := pte.New(512, addr.Page2M)
	tl.Insert(1, 1024, e)
	// Any VPN inside the huge page hits.
	for _, v := range []addr.VPN{1024, 1200, 1535} {
		if got, ok := tl.Lookup(1, v); !ok || got != e {
			t.Errorf("VPN %d missed in 2M TLB", v)
		}
	}
	if _, ok := tl.Lookup(1, 1536); ok {
		t.Error("VPN outside huge page hit")
	}
}

func TestInvalidate(t *testing.T) {
	tl := New(64, 4, addr.Page4K)
	tl.Insert(1, 100, pte.New(1, addr.Page4K))
	tl.Invalidate(1, 100)
	if _, ok := tl.Lookup(1, 100); ok {
		t.Error("invalidated entry hit (shootdown broken)")
	}
}

func TestFlushASID(t *testing.T) {
	tl := New(64, 4, addr.Page4K)
	tl.Insert(1, 100, pte.New(1, addr.Page4K))
	tl.Insert(2, 200, pte.New(2, addr.Page4K))
	tl.FlushASID(1)
	if _, ok := tl.Lookup(1, 100); ok {
		t.Error("flushed ASID hit")
	}
	if _, ok := tl.Lookup(2, 200); !ok {
		t.Error("other ASID lost")
	}
}

func TestHierarchyFillAndPromote(t *testing.T) {
	h := NewHierarchy()
	e := pte.New(7, addr.Page4K)
	h.Fill(1, 500, e)
	r, ok := h.Lookup(1, 500)
	if !ok || !r.HitL1 {
		t.Fatalf("expected L1 hit after fill: %+v", r)
	}
	// Push the entry out of L1 by filling its set, then the L2 must catch
	// it and refill L1.
	for i := 1; i <= 64; i++ {
		h.Fill(1, 500+addr.VPN(i*16), pte.New(addr.PPN(i), addr.Page4K))
	}
	r, ok = h.Lookup(1, 500)
	if !ok {
		t.Fatal("L2 TLB lost the entry")
	}
	if r.HitL1 {
		t.Skip("entry still in L1 (set mapping kept it); promotion path covered elsewhere")
	}
	if !r.HitL2 || r.Latency != h.L2Latency {
		t.Errorf("expected L2 hit with latency: %+v", r)
	}
	if r2, _ := h.Lookup(1, 500); !r2.HitL1 {
		t.Error("L2 hit must refill L1")
	}
}

func TestHierarchyHugeFill(t *testing.T) {
	h := NewHierarchy()
	h.Fill(1, 1024, pte.New(512, addr.Page2M))
	if r, ok := h.Lookup(1, 1300); !ok || r.Entry.Size() != addr.Page2M {
		t.Error("huge fill not visible through hierarchy")
	}
}

func TestL2MissRate(t *testing.T) {
	h := NewHierarchy()
	h.Lookup(1, 1) // miss everywhere
	if got := h.L2MissRate(); got != 1 {
		t.Errorf("L2 miss rate = %v", got)
	}
	h.Fill(1, 1, pte.New(1, addr.Page4K))
	// L1 hit: L2 counters untouched.
	h.Lookup(1, 1)
	if got := h.L2MissRate(); got != 1 {
		t.Errorf("L1 hits must not dilute L2 miss rate: %v", got)
	}
}

func TestGeometryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad geometry")
		}
	}()
	New(65, 4, addr.Page4K)
}
