// Package vas models process virtual address spaces: regions (text, data,
// heap, mmap arenas, stack) placed at ASLR-randomized bases, userspace
// allocator behaviour (jemalloc / tcmalloc hole patterns), transparent huge
// page policy, the Figure-2 gap-coverage metric, and the ASLR normalization
// the OS exposes to LVM through base registers (paper §5.2).
package vas

import (
	"fmt"
	"math/rand"
	"sort"

	"lvm/internal/addr"
)

// RegionKind labels a VMA's role.
type RegionKind string

// Region kinds.
const (
	Text  RegionKind = "text"
	Data  RegionKind = "data"
	Heap  RegionKind = "heap"
	Mmap  RegionKind = "mmap"
	Stack RegionKind = "stack"
	Lib   RegionKind = "lib"
)

// Region is one virtual memory area with its mapped pages.
type Region struct {
	Kind RegionKind
	// Base is the first VPN of the region after ASLR placement.
	Base addr.VPN
	// Span is the region's reserved extent in pages.
	Span int
	// Mapped lists the mapped VPNs (sorted, within [Base, Base+Span)).
	Mapped []addr.VPN
	// THPEligible marks regions the OS may back with 2 MB pages.
	THPEligible bool
}

// AddressSpace is a process layout.
type AddressSpace struct {
	Regions []Region
}

// Allocator identifies the userspace allocator hole model.
type Allocator string

// Allocator models (§3.1 evaluates jemalloc and tcmalloc; both keep the
// space highly regular).
const (
	Jemalloc Allocator = "jemalloc"
	Tcmalloc Allocator = "tcmalloc"
)

// LayoutConfig drives synthetic layout generation.
type LayoutConfig struct {
	// HeapPages is the heap size in 4 KB pages.
	HeapPages int
	// MmapRegions and MmapPages size the anonymous mmap arenas.
	MmapRegions int
	MmapPages   int
	// StackPages sizes the stack.
	StackPages int
	// LibCount adds shared-library file mappings.
	LibCount int
	// HoleFraction is the fraction of pages inside heap/mmap regions left
	// unmapped (allocator-dependent fragmentation of the VA space).
	HoleFraction float64
	// MeanHoleRun is the mean length of each unmapped hole in pages.
	MeanHoleRun int
	// Allocator selects the hole pattern model.
	Allocator Allocator
	// ASLR spreads region bases across the canonical 48-bit layout.
	ASLR bool
}

// DefaultConfig is a memory-intensive C/C++ server profile.
func DefaultConfig() LayoutConfig {
	return LayoutConfig{
		HeapPages:    1 << 18, // 1 GB heap
		MmapRegions:  4,
		MmapPages:    1 << 15, // 128 MB per arena
		StackPages:   512,
		LibCount:     6,
		HoleFraction: 0.05,
		MeanHoleRun:  4,
		Allocator:    Jemalloc,
		ASLR:         true,
	}
}

// Generate builds a deterministic layout from the config and seed.
func Generate(cfg LayoutConfig, seed int64) *AddressSpace {
	rng := rand.New(rand.NewSource(seed))
	var space AddressSpace

	// Linux-style ASLR: one random slide per area (executable, heap, mmap
	// area, stack), 2 MB aligned; regions within an area share the slide,
	// so they never collide.
	slides := map[RegionKind]addr.VPN{}
	if cfg.ASLR {
		exe := addr.VPN(rng.Intn(1<<12)) * 512
		mm := addr.VPN(rng.Intn(1<<14)) * 512
		slides[Text] = exe
		slides[Data] = exe
		slides[Heap] = exe + addr.VPN(rng.Intn(1<<10))*512
		slides[Mmap] = mm
		slides[Lib] = mm
		slides[Stack] = addr.VPN(rng.Intn(1<<12)) * 512
	}

	place := func(kind RegionKind, canonical addr.VPN, span int, thp bool) *Region {
		base := canonical + slides[kind]
		space.Regions = append(space.Regions, Region{
			Kind: kind, Base: base, Span: span, THPEligible: thp,
		})
		return &space.Regions[len(space.Regions)-1]
	}

	fill := func(r *Region, holeFrac float64, meanRun int) {
		r.Mapped = r.Mapped[:0]
		if holeFrac <= 0 {
			for i := 0; i < r.Span; i++ {
				r.Mapped = append(r.Mapped, r.Base+addr.VPN(i))
			}
			return
		}
		// Alternate mapped runs and holes with geometric lengths; the
		// allocator buffers application churn, so holes are short and
		// rare (§3.1).
		meanMapped := int(float64(meanRun)*(1-holeFrac)/holeFrac) + 1
		i := 0
		for i < r.Span {
			run := 1 + int(rng.ExpFloat64()*float64(meanMapped))
			for j := 0; j < run && i < r.Span; j++ {
				r.Mapped = append(r.Mapped, r.Base+addr.VPN(i))
				i++
			}
			hole := 1 + int(rng.ExpFloat64()*float64(meanRun-1))
			i += hole
		}
	}

	// Canonical bases mirror a Linux x86-64 layout (units: 4 KB VPNs).
	text := place(Text, 0x00400000>>addr.PageShift<<0, 512, false)
	fill(text, 0, 0)
	data := place(Data, addr.VPN(0x00600000>>addr.PageShift), 256, false)
	fill(data, 0, 0)
	heap := place(Heap, addr.VPN(0x02000000>>addr.PageShift), cfg.HeapPages, true)
	holeFrac := cfg.HoleFraction
	meanRun := cfg.MeanHoleRun
	if cfg.Allocator == Tcmalloc {
		// tcmalloc reserves larger spans and returns memory in bigger
		// chunks: slightly fewer, longer holes. Regularity is practically
		// the same (§3.1).
		meanRun = cfg.MeanHoleRun * 2
		holeFrac = cfg.HoleFraction * 0.9
	}
	fill(heap, holeFrac, meanRun)

	// Region bases stay 2 MB aligned so ASLR normalization preserves
	// huge-page alignment (mmap is 2 MB aligned under THP in Linux too).
	mmapBase := addr.VPN(0x7f00_0000_0000 >> addr.PageShift)
	spacing := (cfg.MmapPages + cfg.MmapPages/8 + 511) &^ 511
	for i := 0; i < cfg.MmapRegions; i++ {
		r := place(Mmap, mmapBase+addr.VPN(i*spacing), cfg.MmapPages, true)
		fill(r, holeFrac, meanRun)
	}
	for i := 0; i < cfg.LibCount; i++ {
		r := place(Lib, mmapBase+addr.VPN((cfg.MmapRegions+1)*spacing+i*1024), 512+rng.Intn(512), false)
		fill(r, 0, 0)
	}
	stack := place(Stack, addr.VPN(0x7fff_f000_0000>>addr.PageShift), cfg.StackPages, false)
	fill(stack, 0, 0)

	sort.Slice(space.Regions, func(i, j int) bool { return space.Regions[i].Base < space.Regions[j].Base })
	return &space
}

// MappedVPNs returns all mapped VPNs in ascending order.
func (s *AddressSpace) MappedVPNs() []addr.VPN {
	var out []addr.VPN
	for _, r := range s.Regions {
		out = append(out, r.Mapped...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TotalMapped returns the number of mapped base pages.
func (s *AddressSpace) TotalMapped() int {
	n := 0
	for _, r := range s.Regions {
		n += len(r.Mapped)
	}
	return n
}

// FootprintBytes returns the mapped memory size.
func (s *AddressSpace) FootprintBytes() uint64 {
	return uint64(s.TotalMapped()) << addr.PageShift
}

// Translation is a page-size-aware mapping unit produced by THP policy.
type Translation struct {
	VPN  addr.VPN
	Size addr.PageSize
}

// Translations applies the THP policy: in THP-eligible regions, aligned
// fully-mapped 512-page runs become one 2 MB translation; everything else
// stays 4 KB (Linux's khugepaged behaviour).
func (s *AddressSpace) Translations(thp bool) []Translation {
	var out []Translation
	for _, r := range s.Regions {
		if !thp || !r.THPEligible {
			for _, v := range r.Mapped {
				out = append(out, Translation{VPN: v, Size: addr.Page4K})
			}
			continue
		}
		mapped := make(map[addr.VPN]bool, len(r.Mapped))
		for _, v := range r.Mapped {
			mapped[v] = true
		}
		emitted := make(map[addr.VPN]bool)
		for _, v := range r.Mapped {
			base := addr.AlignDown(v, addr.Page2M)
			if emitted[base] {
				continue
			}
			full := true
			for i := addr.VPN(0); i < 512; i++ {
				if !mapped[base+i] {
					full = false
					break
				}
			}
			if full {
				emitted[base] = true
				out = append(out, Translation{VPN: base, Size: addr.Page2M})
			} else if !emitted[v] {
				out = append(out, Translation{VPN: v, Size: addr.Page4K})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VPN < out[j].VPN })
	return out
}

// GapCoverage computes the Figure-2 metric over sorted VPNs: the fraction
// of adjacent mapped pairs whose gap equals 1 (perfect sequentiality).
func GapCoverage(vpns []addr.VPN) float64 {
	if len(vpns) < 2 {
		return 1
	}
	seq := 0
	for i := 1; i < len(vpns); i++ {
		if vpns[i]-vpns[i-1] == 1 {
			seq++
		}
	}
	return float64(seq) / float64(len(vpns)-1)
}

// Normalizer implements the ASLR-base-register mechanism of §5.2: the OS
// exposes each region's slide to hardware, which subtracts it before the
// learned-index walk. Normalization packs regions into a compact canonical
// layout, so the index trains on a regular key space while applications
// keep full ASLR entropy.
type Normalizer struct {
	// bounds[i] covers raw VPNs [rawLo, rawHi]; normalized base normBase.
	regions []normRegion
}

type normRegion struct {
	rawLo, rawHi addr.VPN
	normBase     addr.VPN
}

// NewNormalizer builds the register set for a layout: regions are packed in
// base order with one-page guard gaps.
func NewNormalizer(s *AddressSpace) *Normalizer {
	n := &Normalizer{}
	cursor := addr.VPN(0x400) // small canonical offset
	for _, r := range s.Regions {
		n.regions = append(n.regions, normRegion{
			rawLo:    r.Base,
			rawHi:    r.Base + addr.VPN(r.Span) - 1,
			normBase: cursor,
		})
		// Keep 2MB alignment so huge pages stay aligned after
		// normalization; adjacent raw regions stay adjacent.
		cursor += addr.VPN((r.Span + 511) &^ 511)
	}
	return n
}

// Normalize maps a raw VPN to its canonical VPN. VPNs outside every region
// are returned unchanged (they can only miss).
func (n *Normalizer) Normalize(v addr.VPN) addr.VPN {
	i := sort.Search(len(n.regions), func(i int) bool { return n.regions[i].rawHi >= v })
	if i < len(n.regions) && v >= n.regions[i].rawLo {
		return n.regions[i].normBase + (v - n.regions[i].rawLo)
	}
	return v
}

// Regions returns the number of base registers the normalizer needs.
func (n *Normalizer) Regions() int { return len(n.regions) }

// String summarizes the register set.
func (n *Normalizer) String() string {
	return fmt.Sprintf("Normalizer{%d regions}", len(n.regions))
}
