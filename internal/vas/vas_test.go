package vas

import (
	"sort"
	"testing"

	"lvm/internal/addr"
)

func smallCfg() LayoutConfig {
	cfg := DefaultConfig()
	cfg.HeapPages = 8192
	cfg.MmapPages = 2048
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallCfg(), 7)
	b := Generate(smallCfg(), 7)
	av, bv := a.MappedVPNs(), b.MappedVPNs()
	if len(av) != len(bv) {
		t.Fatalf("lengths differ: %d vs %d", len(av), len(bv))
	}
	for i := range av {
		if av[i] != bv[i] {
			t.Fatal("same seed produced different layouts")
		}
	}
	c := Generate(smallCfg(), 8)
	if len(c.MappedVPNs()) == len(av) && c.MappedVPNs()[0] == av[0] {
		t.Log("different seeds may coincide in size; checking base differs")
	}
}

func TestRegionsDisjoint(t *testing.T) {
	s := Generate(smallCfg(), 3)
	type iv struct{ lo, hi addr.VPN }
	var ivs []iv
	for _, r := range s.Regions {
		ivs = append(ivs, iv{r.Base, r.Base + addr.VPN(r.Span) - 1})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	for i := 1; i < len(ivs); i++ {
		if ivs[i].lo <= ivs[i-1].hi {
			t.Fatalf("regions overlap: [%#x,%#x] and [%#x,%#x]",
				uint64(ivs[i-1].lo), uint64(ivs[i-1].hi), uint64(ivs[i].lo), uint64(ivs[i].hi))
		}
	}
}

func TestMappedWithinRegions(t *testing.T) {
	s := Generate(smallCfg(), 11)
	for _, r := range s.Regions {
		for _, v := range r.Mapped {
			if v < r.Base || v >= r.Base+addr.VPN(r.Span) {
				t.Fatalf("%s region: VPN %#x outside [base, base+span)", r.Kind, uint64(v))
			}
		}
		for i := 1; i < len(r.Mapped); i++ {
			if r.Mapped[i] <= r.Mapped[i-1] {
				t.Fatalf("%s region mapped VPNs not strictly ascending", r.Kind)
			}
		}
	}
}

func TestGapCoverageRegular(t *testing.T) {
	// §3.1: all evaluated configurations show ≥78% gap-1 coverage; our
	// default server profile should be well above that.
	s := Generate(DefaultConfig(), 1)
	got := GapCoverage(s.MappedVPNs())
	if got < 0.85 {
		t.Errorf("gap coverage = %.3f, want ≥ 0.85 for the default profile", got)
	}
}

func TestGapCoverageAllocatorsSimilar(t *testing.T) {
	je := smallCfg()
	je.Allocator = Jemalloc
	tc := smallCfg()
	tc.Allocator = Tcmalloc
	a := GapCoverage(Generate(je, 5).MappedVPNs())
	b := GapCoverage(Generate(tc, 5).MappedVPNs())
	if diff := a - b; diff > 0.1 || diff < -0.1 {
		t.Errorf("allocator choice changed regularity too much: %.3f vs %.3f", a, b)
	}
}

func TestGapCoverageEdgeCases(t *testing.T) {
	if GapCoverage(nil) != 1 || GapCoverage([]addr.VPN{5}) != 1 {
		t.Error("degenerate inputs must report full coverage")
	}
	if got := GapCoverage([]addr.VPN{1, 2, 3, 10}); got != 2.0/3 {
		t.Errorf("coverage = %v want 2/3", got)
	}
}

func TestTranslations4K(t *testing.T) {
	s := Generate(smallCfg(), 2)
	trs := s.Translations(false)
	if len(trs) != s.TotalMapped() {
		t.Errorf("4K translations = %d, mapped = %d", len(trs), s.TotalMapped())
	}
	for _, tr := range trs {
		if tr.Size != addr.Page4K {
			t.Fatal("non-4K translation without THP")
		}
	}
}

func TestTranslationsTHP(t *testing.T) {
	cfg := smallCfg()
	cfg.HoleFraction = 0 // fully mapped heap: maximal THP
	s := Generate(cfg, 2)
	trs := s.Translations(true)
	huge := 0
	var pages uint64
	for _, tr := range trs {
		if tr.Size == addr.Page2M {
			huge++
			if !addr.Aligned(tr.VPN, addr.Page2M) {
				t.Fatal("unaligned 2M translation")
			}
		}
		pages += tr.Size.BaseVPNs()
	}
	if huge == 0 {
		t.Error("THP produced no huge pages on a fully mapped heap")
	}
	if pages != uint64(s.TotalMapped()) {
		t.Errorf("translations cover %d pages, mapped %d", pages, s.TotalMapped())
	}
	if len(trs) >= s.TotalMapped() {
		t.Error("THP must reduce translation count")
	}
}

func TestTranslationsTHPPartialRuns(t *testing.T) {
	cfg := smallCfg()
	cfg.HoleFraction = 0.3 // heavy holes: most 2M runs incomplete
	cfg.MeanHoleRun = 2
	s := Generate(cfg, 2)
	trs := s.Translations(true)
	var pages uint64
	seen := map[addr.VPN]bool{}
	for _, tr := range trs {
		for i := addr.VPN(0); i < addr.VPN(tr.Size.BaseVPNs()); i++ {
			if seen[tr.VPN+i] {
				t.Fatalf("VPN %#x covered twice", uint64(tr.VPN+i))
			}
			seen[tr.VPN+i] = true
		}
		pages += tr.Size.BaseVPNs()
	}
	if pages != uint64(s.TotalMapped()) {
		t.Errorf("coverage %d != mapped %d", pages, s.TotalMapped())
	}
}

func TestNormalizerPacksRegions(t *testing.T) {
	s := Generate(smallCfg(), 9)
	n := NewNormalizer(s)
	vpns := s.MappedVPNs()
	rawSpan := uint64(vpns[len(vpns)-1] - vpns[0])

	var norm []addr.VPN
	for _, v := range vpns {
		norm = append(norm, n.Normalize(v))
	}
	// Normalized VPNs must preserve order and be unique.
	for i := 1; i < len(norm); i++ {
		if norm[i] <= norm[i-1] {
			t.Fatal("normalization broke ordering")
		}
	}
	normSpan := uint64(norm[len(norm)-1] - norm[0])
	if normSpan >= rawSpan {
		t.Errorf("normalization did not compact the space: %d >= %d", normSpan, rawSpan)
	}
	// Gap coverage is preserved (intra-region structure untouched; 2MB
	// alignment padding may perturb a handful of inter-region pairs).
	if GapCoverage(norm) < GapCoverage(vpns)-1e-3 {
		t.Errorf("normalization reduced regularity: %.4f -> %.4f",
			GapCoverage(vpns), GapCoverage(norm))
	}
}

func TestNormalizerPreservesHugeAlignment(t *testing.T) {
	s := Generate(smallCfg(), 4)
	n := NewNormalizer(s)
	for _, r := range s.Regions {
		base2M := addr.AlignDown(r.Base+511, addr.Page2M)
		if base2M >= r.Base+addr.VPN(r.Span) {
			continue
		}
		nb := n.Normalize(base2M)
		rel := base2M - r.Base
		if (nb-n.Normalize(r.Base))%512 != rel%512 {
			t.Fatal("normalization changed intra-region page offsets")
		}
	}
}

func TestNormalizeOutsideRegions(t *testing.T) {
	s := Generate(smallCfg(), 4)
	n := NewNormalizer(s)
	if got := n.Normalize(0); got != 0 {
		t.Errorf("VPN outside regions should pass through, got %#x", uint64(got))
	}
}

func TestQuickNormalizerOrderPreserving(t *testing.T) {
	// Property: for any layout, normalization is strictly monotone over
	// mapped VPNs and keeps every VPN inside a region mapped into the
	// packed image of that region.
	for seed := int64(0); seed < 12; seed++ {
		cfg := smallCfg()
		s := Generate(cfg, seed)
		n := NewNormalizer(s)
		var prev addr.VPN
		first := true
		for _, v := range s.MappedVPNs() {
			nv := n.Normalize(v)
			if !first && nv <= prev {
				t.Fatalf("seed %d: normalization not monotone at %#x", seed, uint64(v))
			}
			prev, first = nv, false
		}
	}
}

func TestRegionSpansAre2MAligned(t *testing.T) {
	// The normalizer and the index's granule snapping rely on 2MB-aligned
	// region bases.
	for seed := int64(0); seed < 8; seed++ {
		s := Generate(DefaultConfig(), seed)
		for _, r := range s.Regions {
			if uint64(r.Base)%512 != 0 {
				t.Fatalf("seed %d: region %s base %#x not 2MB aligned", seed, r.Kind, uint64(r.Base))
			}
		}
	}
}
