// Package victima implements a Victima-style translation scheme (Kanellopoulos
// et al., MICRO'23, see PAPERS.md): TLB-extending translation entries live in
// the *modeled cache hierarchy* itself rather than in dedicated SRAM. Each
// process owns a physically backed, direct-mapped store of tagged PTEs; on an
// L2 TLB miss the walker probes the store with one memory request — the probe
// enters at L2 like any walk request, so store entries are cached in L2 and
// evicted under ordinary cache pressure, which is exactly the mechanism the
// scheme trades on. A store miss falls back to the radix walk, and the fill
// that installs the fetched entry into the store rides the walk's verify
// region: it completes concurrently with the data access, off the critical
// path, like a TLB fill.
//
// Only 4 KB translations are cached (huge pages keep radix walks short and a
// 2 MB entry would alias 512 probe tags); under THP the scheme degrades to
// radix plus one parallel probe.
package victima

import (
	"fmt"

	"lvm/internal/addr"
	"lvm/internal/metrics"
	"lvm/internal/mmu"
	"lvm/internal/phys"
	"lvm/internal/pte"
	"lvm/internal/radix"
	"lvm/internal/stats"
)

// DefaultStoreSlots sizes the per-process store: 16 Ki slots of 8 bytes is a
// 128 KB region — far beyond the L2 TLB's reach, but several times the scaled
// L2 cache, so which slots stay fast is decided by cache residency, not by a
// dedicated structure's capacity.
const DefaultStoreSlots = 1 << 14

// Table is one process's Victima state: the authoritative radix table plus
// the physically backed translation store. The store is a pure performance
// cache — the OS invalidates the affected slot on every map/unmap/protect, so
// it can never return a translation the radix table would not.
type Table struct {
	mem   *phys.Memory
	Radix *radix.Table

	// slots mirrors the store region's contents; base/order anchor it in
	// simulated physical memory so every probe has a real PA.
	slots []pte.Tagged
	base  addr.PPN
	order int
	mask  uint64
}

// New creates a table with the default store sizing.
func New(mem *phys.Memory) (*Table, error) { return NewSized(mem, DefaultStoreSlots) }

// NewSized creates a table whose store has the given slot count (a power of
// two).
func NewSized(mem *phys.Memory, storeSlots int) (*Table, error) {
	if storeSlots <= 0 || storeSlots&(storeSlots-1) != 0 {
		return nil, fmt.Errorf("victima: store slots must be a positive power of two, got %d", storeSlots)
	}
	rt, err := radix.New(mem)
	if err != nil {
		return nil, err
	}
	order := phys.OrderForBytes(uint64(storeSlots) * pte.TaggedBytes)
	base, err := mem.Alloc(order)
	if err != nil {
		rt.Release()
		return nil, fmt.Errorf("victima: allocating translation store: %w", err)
	}
	return &Table{
		mem:   mem,
		Radix: rt,
		slots: make([]pte.Tagged, storeSlots),
		base:  base,
		order: order,
		mask:  uint64(storeSlots - 1),
	}, nil
}

// slotIndex maps a VPN to its direct-mapped store slot.
func (t *Table) slotIndex(v addr.VPN) uint64 { return uint64(v) & t.mask }

// SlotPA returns the physical address of a VPN's store slot — the request
// the walker issues for the probe and the fill.
func (t *Table) SlotPA(v addr.VPN) addr.PA {
	return addr.SlotPA(t.base, t.slotIndex(v), pte.TaggedBytes)
}

// probe checks the store for an exact-VPN hit.
func (t *Table) probe(v addr.VPN) (pte.Entry, bool) {
	s := t.slots[t.slotIndex(v)]
	if s.Valid() && s.Tag == v {
		return s.Entry, true
	}
	return 0, false
}

// insert installs a 4 KB translation fetched by a radix walk (called from
// the walker's fill path, never from the OS).
func (t *Table) insert(v addr.VPN, e pte.Entry) {
	t.slots[t.slotIndex(v)] = pte.Tagged{Tag: v, Entry: e}
}

// invalidate drops the slot caching v, if it does.
func (t *Table) invalidate(v addr.VPN) {
	i := t.slotIndex(v)
	if t.slots[i].Valid() && t.slots[i].Tag == v {
		t.slots[i] = pte.Tagged{}
	}
}

// Map installs a translation in the radix table and invalidates the store
// slot so a stale cached entry (a remap or permission change) cannot
// survive it.
func (t *Table) Map(v addr.VPN, e pte.Entry) error {
	if err := t.Radix.Map(v, e); err != nil {
		return err
	}
	t.invalidate(v)
	return nil
}

// Unmap removes a translation, invalidating its store slot.
func (t *Table) Unmap(v addr.VPN) bool {
	ok := t.Radix.Unmap(v)
	if ok {
		t.invalidate(v)
	}
	return ok
}

// Lookup is the software walk (the radix table is authoritative).
func (t *Table) Lookup(v addr.VPN) (pte.Entry, bool) { return t.Radix.Lookup(v) }

// TableBytes returns the physical memory consumed: radix table pages plus
// the store region.
func (t *Table) TableBytes() uint64 {
	return t.Radix.TableBytes() + phys.BlockBytes(t.order)
}

// Release frees the store region and the radix table (process exit).
func (t *Table) Release() {
	t.mem.Free(t.base, t.order)
	t.slots = nil
	t.Radix.Release()
}

// Walker is the Victima hardware walker: one store probe, then a radix
// walk (with its PWC) on a store miss, then the off-critical-path fill.
type Walker struct {
	tables map[uint16]*Table
	// lastASID/lastTable memoize the most recent tables lookup so batched
	// walks skip the map per access; Attach/Detach invalidate it.
	lastASID  uint16
	lastTable *Table
	rad       *radix.Walker
	// buf is the reusable walk-trace buffer; the embedded radix walker
	// appends into it after the probe, so composing the trace never copies.
	buf mmu.WalkBuf

	storeHits, storeMisses, fills stats.Counter
}

// NewWalker creates the walker (radix PWC sizing from Table 1 for the
// fallback walk).
func NewWalker() *Walker {
	return &Walker{tables: make(map[uint16]*Table), rad: radix.NewWalker(32)}
}

// Attach registers a table under an ASID.
func (w *Walker) Attach(asid uint16, t *Table) {
	w.tables[asid] = t
	w.lastTable = nil
	w.rad.Attach(asid, t.Radix)
}

// Detach removes a process's table (and its radix walker state).
func (w *Walker) Detach(asid uint16) {
	delete(w.tables, asid)
	w.lastTable = nil
	w.rad.Detach(asid)
}

// table resolves an ASID's table through the one-entry memo.
func (w *Walker) table(asid uint16) (*Table, bool) {
	if w.lastTable != nil && w.lastASID == asid {
		return w.lastTable, true
	}
	t, ok := w.tables[asid]
	if ok {
		w.lastASID, w.lastTable = asid, t
	}
	return t, ok
}

// Name implements mmu.Walker.
func (w *Walker) Name() string { return "victima" }

// Snapshot implements metrics.Source: the store probe counters plus the
// fallback radix walker's PWC counters.
func (w *Walker) Snapshot() metrics.Set {
	s := w.rad.Snapshot()
	s.Counter("store.hits", w.storeHits.Value())
	s.Counter("store.misses", w.storeMisses.Value())
	s.Counter("store.fills", w.fills.Value())
	return s
}

var _ metrics.Source = (*Walker)(nil)

// Walk implements mmu.Walker.
func (w *Walker) Walk(asid uint16, v addr.VPN) mmu.Outcome {
	t, ok := w.table(asid)
	if !ok {
		return mmu.Outcome{}
	}
	w.buf.Reset()
	return w.walkInto(&w.buf, t, asid, v, false)
}

// walkInto emits one walk's trace into b: the store probe (one request, one
// group — it enters the hierarchy at L2 like every walk request, so its
// latency is the store's cache residency), then on a probe miss the radix
// fallback, then the store fill in the verify region. batched selects the
// radix walker's plan-replay entry point.
func (w *Walker) walkInto(b *mmu.WalkBuf, t *Table, asid uint16, v addr.VPN, batched bool) mmu.Outcome {
	slotPA := t.SlotPA(v)
	b.AddGroup(slotPA)
	if e, hit := t.probe(v); hit {
		w.storeHits.Inc()
		return b.Outcome(e, true, mmu.StepCycles)
	}
	w.storeMisses.Inc()
	var radOut mmu.Outcome
	if batched {
		radOut = w.rad.WalkNextInto(b, asid, v)
	} else {
		radOut = w.rad.WalkInto(b, asid, v)
	}
	wcc := radOut.WalkCacheCycles + mmu.StepCycles
	if radOut.Found && radOut.Entry.Size() == addr.Page4K {
		// Install the fetched entry off the critical path: the store write
		// overlaps the data access, exactly like the TLB fill it mirrors.
		b.BeginVerify()
		b.AddGroup(slotPA)
		t.insert(v, radOut.Entry)
		w.fills.Inc()
	}
	return b.Outcome(radOut.Entry, radOut.Found, wcc)
}

// Lookup implements mmu.Lookuper: resolve functionally without mutating the
// store (fills happen in the timing walk, keeping scalar and batched runs
// identical); on a store miss the embedded radix walker records the plan the
// following WalkBatch replays.
func (w *Walker) Lookup(asid uint16, v addr.VPN) (pte.Entry, bool) {
	t, ok := w.table(asid)
	if !ok {
		return 0, false
	}
	if e, hit := t.probe(v); hit {
		return e, true
	}
	return w.rad.Lookup(asid, v)
}

// WalkBatch implements mmu.BatchWalker: probe the live store per slot and
// replay the radix plans recorded by the preceding Lookup sequence on store
// misses. A same-batch fill can overwrite a slot another VPN's Lookup hit
// on (a direct-mapped conflict); the radix walker's plan-mismatch fallback
// walks those fresh, so the batch still matches the scalar semantics.
func (w *Walker) WalkBatch(asid uint16, vpns []addr.VPN, bufs *mmu.WalkBatchBuf) {
	bufs.Reset(len(vpns))
	t, ok := w.table(asid)
	for i, v := range vpns {
		if !ok {
			bufs.SetOutcome(i, mmu.Outcome{})
			continue
		}
		bufs.SetOutcome(i, w.walkInto(bufs.Buf(i), t, asid, v, true))
	}
	w.rad.FlushPlans()
}

var _ mmu.Walker = (*Walker)(nil)
var _ mmu.BatchWalker = (*Walker)(nil)
var _ mmu.Lookuper = (*Walker)(nil)
