package victima

import (
	"testing"

	"lvm/internal/addr"
	"lvm/internal/phys"
	"lvm/internal/pte"
)

func newTable(t *testing.T) *Table {
	t.Helper()
	tb, err := New(phys.New(256 << 20))
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestNewSizedRejectsNonPowerOfTwo(t *testing.T) {
	mem := phys.New(64 << 20)
	for _, n := range []int{0, -8, 3, 1000} {
		if _, err := NewSized(mem, n); err == nil {
			t.Errorf("NewSized(%d) accepted a non-power-of-two", n)
		}
	}
}

func TestMapLookupUnmap(t *testing.T) {
	tb := newTable(t)
	e := pte.New(0xabc, addr.Page4K)
	if err := tb.Map(7, e); err != nil {
		t.Fatal(err)
	}
	if got, ok := tb.Lookup(7); !ok || got != e {
		t.Fatalf("lookup = %v, %t", got, ok)
	}
	if !tb.Unmap(7) {
		t.Fatal("unmap failed")
	}
	if _, ok := tb.Lookup(7); ok {
		t.Error("lookup after unmap succeeded")
	}
}

// TestStoreInvalidatedOnRemap checks the OS-side coherence rule: a store
// entry filled by a walk must not survive a remap of its VPN — the next walk
// must miss the store and fetch the new translation.
func TestStoreInvalidatedOnRemap(t *testing.T) {
	tb := newTable(t)
	w := NewWalker()
	w.Attach(1, tb)
	if err := tb.Map(7, pte.New(0x100, addr.Page4K)); err != nil {
		t.Fatal(err)
	}
	// First walk misses the store and fills it.
	if out := w.Walk(1, 7); !out.Found || out.Entry.PPN() != 0x100 {
		t.Fatalf("walk 1: %+v", out)
	}
	if w.fills.Value() != 1 {
		t.Fatalf("fills = %d", w.fills.Value())
	}
	// Remap: the fill must be invalidated, not served stale.
	if err := tb.Map(7, pte.New(0x200, addr.Page4K)); err != nil {
		t.Fatal(err)
	}
	out := w.Walk(1, 7)
	if !out.Found || out.Entry.PPN() != 0x200 {
		t.Fatalf("walk after remap = %+v, want PPN 0x200", out)
	}
	if w.storeHits.Value() != 0 {
		t.Errorf("store hit on a remapped VPN (hits = %d)", w.storeHits.Value())
	}
}

// TestStoreInvalidatedOnUnmap: after unmap the walk must fault, not hit a
// stale store slot.
func TestStoreInvalidatedOnUnmap(t *testing.T) {
	tb := newTable(t)
	w := NewWalker()
	w.Attach(1, tb)
	tb.Map(9, pte.New(0x300, addr.Page4K))
	w.Walk(1, 9) // fill
	tb.Unmap(9)
	if out := w.Walk(1, 9); out.Found {
		t.Fatalf("walk after unmap found %v", out.Entry)
	}
}

// TestWalkTraceShape pins the trace of the miss-then-hit sequence: a cold
// walk is probe + 4 radix levels + the fill riding the verify region; the
// next walk of the same VPN is a single store-probe group with no verify.
func TestWalkTraceShape(t *testing.T) {
	tb := newTable(t)
	w := NewWalker()
	w.Attach(1, tb)
	tb.Map(7, pte.New(0x100, addr.Page4K))

	cold := w.Walk(1, 7)
	if cold.NumGroups() != 6 || cold.VerifyGroups() != 1 {
		t.Fatalf("cold walk: %d groups / %d verify, want 6 / 1",
			cold.NumGroups(), cold.VerifyGroups())
	}
	// Probe and fill target the same store slot.
	if cold.Group(0)[0] != tb.SlotPA(7) || cold.Group(5)[0] != tb.SlotPA(7) {
		t.Errorf("probe %#x / fill %#x, want slot %#x",
			cold.Group(0)[0], cold.Group(5)[0], tb.SlotPA(7))
	}

	hot := w.Walk(1, 7)
	if hot.NumGroups() != 1 || hot.HasVerify() {
		t.Fatalf("hot walk: %d groups, verify=%t, want 1 probe group, no verify",
			hot.NumGroups(), hot.HasVerify())
	}
	if hot.WalkCacheCycles != 2 {
		t.Errorf("hot walk wcc = %d, want StepCycles", hot.WalkCacheCycles)
	}
	if w.storeHits.Value() != 1 || w.storeMisses.Value() != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", w.storeHits.Value(), w.storeMisses.Value())
	}
}

// TestHugePagesNotCached: 2 MB translations must skip the fill (a single tag
// cannot stand in for 512 4 KB probes), so every walk re-probes and falls
// back to radix — and never carries a verify region.
func TestHugePagesNotCached(t *testing.T) {
	tb := newTable(t)
	w := NewWalker()
	w.Attach(1, tb)
	base := addr.AlignDown(1<<12, addr.Page2M)
	if err := tb.Map(base, pte.New(0x4000, addr.Page2M)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		out := w.Walk(1, base+3)
		if !out.Found || out.Entry.Size() != addr.Page2M {
			t.Fatalf("walk %d: %+v", i, out)
		}
		if out.HasVerify() {
			t.Errorf("walk %d: huge-page walk carries a verify region", i)
		}
	}
	if w.fills.Value() != 0 || w.storeHits.Value() != 0 {
		t.Errorf("fills/hits = %d/%d, want 0/0", w.fills.Value(), w.storeHits.Value())
	}
}

// TestLookupDoesNotFill: the functional half must leave the store untouched
// so scalar and batched runs see identical store contents.
func TestLookupDoesNotFill(t *testing.T) {
	tb := newTable(t)
	w := NewWalker()
	w.Attach(1, tb)
	e := pte.New(0x100, addr.Page4K)
	tb.Map(7, e)
	if got, ok := w.Lookup(1, 7); !ok || got != e {
		t.Fatalf("lookup = %v, %t", got, ok)
	}
	// The timing walk must still see a store miss.
	if out := w.Walk(1, 7); out.NumGroups() != 6 {
		t.Errorf("walk after Lookup: %d groups, want cold-walk 6", out.NumGroups())
	}
	if w.storeMisses.Value() != 1 {
		t.Errorf("store misses = %d, want 1", w.storeMisses.Value())
	}
}

// TestDirectMappedConflict: two VPNs sharing a slot evict each other; the
// values returned must always come from the authoritative radix table.
func TestDirectMappedConflict(t *testing.T) {
	tb := newTable(t)
	w := NewWalker()
	w.Attach(1, tb)
	a := addr.VPN(5)
	b := a + addr.VPN(tb.mask+1) // same slot by construction
	if tb.slotIndex(a) != tb.slotIndex(b) {
		t.Fatal("test VPNs do not conflict")
	}
	ea, eb := pte.New(0x100, addr.Page4K), pte.New(0x200, addr.Page4K)
	tb.Map(a, ea)
	tb.Map(b, eb)
	w.Walk(1, a) // fills slot with a
	w.Walk(1, b) // conflict: evicts a
	out := w.Walk(1, a)
	if !out.Found || out.Entry != ea {
		t.Fatalf("walk a after conflict = %+v, want %v", out, ea)
	}
	if out.NumGroups() != 1 {
		// a's slot now holds a again only after this re-fill; the walk that
		// produced out must have been a store miss.
		t.Log("re-walk hit warm PWC; trace:", out.NumGroups(), "groups")
	}
	if w.storeHits.Value() != 0 {
		t.Errorf("store hits = %d, want 0 (every fill was evicted)", w.storeHits.Value())
	}
}

func TestTableBytesIncludesStore(t *testing.T) {
	tb := newTable(t)
	storeBytes := phys.BlockBytes(tb.order)
	if tb.TableBytes() != tb.Radix.TableBytes()+storeBytes {
		t.Errorf("TableBytes = %d, want radix %d + store %d",
			tb.TableBytes(), tb.Radix.TableBytes(), storeBytes)
	}
	if storeBytes < DefaultStoreSlots*pte.TaggedBytes {
		t.Errorf("store region %d B too small for %d slots", storeBytes, DefaultStoreSlots)
	}
}
