// Package wallclock is the single sanctioned source of wall-clock time in
// this repository, and exists to make the nondeterm analyzer's allowlist
// explicit: any other package calling time.Now is a lint violation.
//
// Wall-clock readings are measurement-only — how long an experiment took to
// run on the host. They must never feed back into simulated behavior:
// every simulated quantity (cycles, walk counts, miss rates) is derived
// from the deterministic simulation clock so that EXPERIMENTS.md results
// reproduce bit-for-bit on any machine.
package wallclock

import "time"

// Stopwatch measures elapsed host time for throughput reporting.
type Stopwatch struct {
	start time.Time
}

// Start begins a measurement.
func Start() Stopwatch {
	return Stopwatch{start: time.Now()}
}

// Seconds returns the elapsed host seconds since Start. The value is
// inherently nondeterministic and must only be printed, never stored in
// results that are compared across runs.
func (s Stopwatch) Seconds() float64 {
	return time.Since(s.start).Seconds()
}
