package workload

import (
	"lvm/internal/addr"
)

// tracer accumulates the access trace up to a cap.
type tracer struct {
	out []Access
	max int
}

func (t *tracer) full() bool { return len(t.out) >= t.max }

func (t *tracer) load(va addr.VA) { t.out = append(t.out, Access{VA: va}) }

func (t *tracer) store(va addr.VA) { t.out = append(t.out, Access{VA: va, Write: true}) }

// Element strides, in bytes. graphBIG's vertex properties are structs and
// its edges carry weights, so the in-memory elements are larger than the
// bare indices our host-side CSR stores; the strides reproduce the paper's
// footprint-per-vertex without holding the padding in host memory.
const (
	offStride  = 8
	tgtStride  = 16 // target id + edge weight + padding
	propStride = 64 // per-vertex property struct
)

// graphArrays holds the VAs of the CSR and property arrays inside the heap.
type graphArrays struct {
	offsets addr.VA // (V+1) × offStride
	targets addr.VA // E × tgtStride
	propA   addr.VA // V × propStride (visited / labels / rank)
	propB   addr.VA // V × propStride (queue / next rank / dist)
}

func (a graphArrays) offVA(u int) addr.VA    { return a.offsets + addr.VA(u*offStride) }
func (a graphArrays) tgtVA(i uint64) addr.VA { return a.targets + addr.VA(i*tgtStride) }
func (a graphArrays) aVA(v int) addr.VA      { return a.propA + addr.VA(v*propStride) }
func (a graphArrays) bVA(v int) addr.VA      { return a.propB + addr.VA(v*propStride) }

// buildGraph constructs one of the six graphBIG kernels over the shared
// Kronecker graph (§6.2). The trace contains the VAs of the array elements
// the kernel actually touches, so spatial locality (sequential offsets,
// random targets) matches the real algorithms.
func buildGraph(name string, p Params) *Workload {
	g := sharedGraph(p)

	bytes := uint64(g.V+1)*offStride + uint64(g.E())*tgtStride + 2*uint64(g.V)*propStride
	heapPages := int(bytes>>addr.PageShift) + 2048
	space := heapLayout(heapPages, p.Seed)
	heap := heapRegion(space)
	ar := newArena(heap)
	arr := graphArrays{
		offsets: ar.alloc(uint64(g.V+1) * offStride),
		targets: ar.alloc(uint64(g.E()) * tgtStride),
		propA:   ar.alloc(uint64(g.V) * propStride),
		propB:   ar.alloc(uint64(g.V) * propStride),
	}

	tr := &tracer{out: make([]Access, 0, p.TraceLen), max: p.TraceLen}
	rng := rngFor(p, int64(len(name)))
	switch name {
	case "bfs":
		traceBFS(g, arr, tr, rng.Intn(g.V))
	case "dfs":
		traceDFS(g, arr, tr, rng.Intn(g.V))
	case "cc":
		traceCC(g, arr, tr)
	case "dc":
		traceDC(g, arr, tr)
	case "pr":
		tracePR(g, arr, tr)
	case "sssp":
		traceSSSP(g, arr, tr, rng.Intn(g.V))
	default:
		panic("workload: unknown graph kernel " + name)
	}
	// Restart from fresh sources if the component was small.
	for !tr.full() {
		switch name {
		case "bfs":
			traceBFS(g, arr, tr, rng.Intn(g.V))
		case "dfs":
			traceDFS(g, arr, tr, rng.Intn(g.V))
		case "sssp":
			traceSSSP(g, arr, tr, rng.Intn(g.V))
		default:
			// Iterative kernels: run another sweep.
			traceCC(g, arr, tr)
		}
	}
	if len(tr.out) > p.TraceLen {
		tr.out = tr.out[:p.TraceLen]
	}
	return &Workload{Name: name, Space: space, Accesses: tr.out, InstrsPerAccess: 6}
}

func traceBFS(g *Graph, a graphArrays, t *tracer, src int) {
	visited := make([]bool, g.V)
	frontier := []int{src}
	visited[src] = true
	for len(frontier) > 0 && !t.full() {
		var next []int
		for _, u := range frontier {
			if t.full() {
				return
			}
			t.load(a.offVA(u)) // offsets[u], offsets[u+1] share a line
			lo, hi := g.Offsets[u], g.Offsets[u+1]
			for i := lo; i < hi && !t.full(); i++ {
				t.load(a.tgtVA(i))
				v := int(g.Targets[i])
				t.load(a.aVA(v)) // visited check: random access
				if !visited[v] {
					visited[v] = true
					t.store(a.aVA(v))
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
}

func traceDFS(g *Graph, a graphArrays, t *tracer, src int) {
	visited := make([]bool, g.V)
	stack := []int{src}
	for len(stack) > 0 && !t.full() {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		t.load(a.aVA(u))
		if visited[u] {
			continue
		}
		visited[u] = true
		t.store(a.aVA(u))
		t.load(a.offVA(u))
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		for i := lo; i < hi && !t.full(); i++ {
			t.load(a.tgtVA(i))
			stack = append(stack, int(g.Targets[i]))
		}
	}
}

// traceCC runs one label-propagation sweep (connected components).
func traceCC(g *Graph, a graphArrays, t *tracer) {
	for u := 0; u < g.V && !t.full(); u++ {
		t.load(a.aVA(u)) // label[u]: sequential
		t.load(a.offVA(u))
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		changed := false
		for i := lo; i < hi && !t.full(); i++ {
			t.load(a.tgtVA(i))
			v := int(g.Targets[i])
			t.load(a.aVA(v)) // label[v]: random
			if v < u {
				changed = true
			}
		}
		if changed {
			t.store(a.aVA(u))
		}
	}
}

// traceDC computes degree centrality: sequential out-degree scan plus
// random in-degree scatter.
func traceDC(g *Graph, a graphArrays, t *tracer) {
	for u := 0; u < g.V && !t.full(); u++ {
		t.load(a.offVA(u))
		t.store(a.aVA(u)) // outdeg[u]: sequential
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		for i := lo; i < hi && !t.full(); i++ {
			t.load(a.tgtVA(i))
			t.store(a.bVA(int(g.Targets[i]))) // indeg[v]++: random
		}
	}
}

// tracePR runs PageRank push iterations.
func tracePR(g *Graph, a graphArrays, t *tracer) {
	for !t.full() {
		for u := 0; u < g.V && !t.full(); u++ {
			t.load(a.aVA(u)) // rank[u]: sequential
			t.load(a.offVA(u))
			lo, hi := g.Offsets[u], g.Offsets[u+1]
			for i := lo; i < hi && !t.full(); i++ {
				t.load(a.tgtVA(i))
				t.store(a.bVA(int(g.Targets[i]))) // acc[v] += share: random
			}
		}
	}
}

// traceSSSP runs Bellman-Ford-style relaxations from a source.
func traceSSSP(g *Graph, a graphArrays, t *tracer, src int) {
	const inf = int(^uint(0) >> 1)
	dist := make([]int, g.V)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 && !t.full() {
		u := queue[0]
		queue = queue[1:]
		t.load(a.bVA(u)) // dist[u]
		t.load(a.offVA(u))
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		for i := lo; i < hi && !t.full(); i++ {
			t.load(a.tgtVA(i))
			v := int(g.Targets[i])
			t.load(a.bVA(v)) // dist[v]: random
			w := 1 + int(i%7)
			if dist[u]+w < dist[v] {
				dist[v] = dist[u] + w
				t.store(a.bVA(v))
				queue = append(queue, v)
			}
		}
	}
}
