package workload

import (
	"math/rand"
	"sort"
)

// Graph is a CSR-format directed graph, the in-memory representation
// graphBIG's kernels operate on. Offsets and Targets are the two big arrays
// whose virtual addresses dominate the access traces.
type Graph struct {
	V       int
	Offsets []uint64 // V+1 entries
	Targets []uint32 // E entries
}

// Kronecker generates an RMAT/Kronecker graph with 2^scale vertices and
// roughly avgDegree edges per vertex, the synthetic input the paper's graph
// workloads use (§6.2: "a Kronecker graph"). Standard Graph500 RMAT
// parameters (a=0.57, b=0.19, c=0.19).
func Kronecker(scale int, avgDegree int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	v := 1 << uint(scale)
	e := v * avgDegree

	type edge struct{ src, dst uint32 }
	edges := make([]edge, 0, e)
	const a, b, c = 0.57, 0.19, 0.19
	for i := 0; i < e; i++ {
		var src, dst uint32
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: neither bit set
			case r < a+b:
				dst |= 1 << uint(bit)
			case r < a+b+c:
				src |= 1 << uint(bit)
			default:
				src |= 1 << uint(bit)
				dst |= 1 << uint(bit)
			}
		}
		edges = append(edges, edge{src, dst})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].src != edges[j].src {
			return edges[i].src < edges[j].src
		}
		return edges[i].dst < edges[j].dst
	})

	g := &Graph{
		V:       v,
		Offsets: make([]uint64, v+1),
		Targets: make([]uint32, 0, len(edges)),
	}
	cur := uint32(0)
	for _, ed := range edges {
		for cur < ed.src {
			cur++
			g.Offsets[cur] = uint64(len(g.Targets))
		}
		g.Targets = append(g.Targets, ed.dst)
	}
	for cur < uint32(v) {
		cur++
		g.Offsets[cur] = uint64(len(g.Targets))
	}
	return g
}

// Degree returns the out-degree of vertex u.
func (g *Graph) Degree(u int) int {
	return int(g.Offsets[u+1] - g.Offsets[u])
}

// Neighbors returns the target slice of vertex u.
func (g *Graph) Neighbors(u int) []uint32 {
	return g.Targets[g.Offsets[u]:g.Offsets[u+1]]
}

// E returns the edge count.
func (g *Graph) E() int { return len(g.Targets) }
