package workload

import (
	"math/rand"

	"lvm/internal/addr"
)

// buildGUPS synthesizes the HPC Challenge random-access benchmark (§6.2):
// read-modify-writes to uniformly random 8-byte words of one large table.
// It is the most TLB-hostile workload: essentially every access touches a
// new page.
func buildGUPS(p Params) *Workload {
	tableBytes := p.GUPSTableBytes
	heapPages := int(tableBytes>>addr.PageShift) + 1024
	space := heapLayout(heapPages, p.Seed+1)
	ar := newArena(heapRegion(space))
	table := ar.alloc(tableBytes)

	rng := rngFor(p, 2)
	tr := &tracer{max: p.TraceLen}
	words := tableBytes / 8
	for !tr.full() {
		idx := uint64(rng.Int63n(int64(words)))
		tr.store(table + addr.VA(idx*8)) // RMW on a random word
	}
	return &Workload{Name: "gups", Space: space, Accesses: tr.out, InstrsPerAccess: 4}
}

// buildMemcached synthesizes an in-memory key-value store (§6.2): a large
// bucket array probed by key hash, followed by item accesses in a slab
// region, with a mildly skewed key popularity and ~10% writes.
func buildMemcached(p Params) *Workload {
	total := p.MemcachedBytes
	bucketBytes := total / 8
	slabBytes := total - bucketBytes
	heapPages := int(total>>addr.PageShift) + 1024
	space := heapLayout(heapPages, p.Seed+2)
	ar := newArena(heapRegion(space))
	buckets := ar.alloc(bucketBytes)
	slab := ar.alloc(slabBytes)

	nBuckets := bucketBytes / 8
	const itemBytes = 128
	nItems := slabBytes / itemBytes

	rng := rngFor(p, 3)
	zipf := rand.NewZipf(rng, 1.2, 1, nItems-1)
	tr := &tracer{max: p.TraceLen}
	for !tr.full() {
		item := zipf.Uint64()
		// Hash the key to a bucket (mix so hot items do not cluster).
		bucket := (item * 0x9e3779b97f4a7c15) % nBuckets
		tr.load(buckets + addr.VA(bucket*8))
		if tr.full() {
			break
		}
		itemVA := slab + addr.VA(item*itemBytes)
		if rng.Intn(10) == 0 {
			tr.store(itemVA) // SET
		} else {
			tr.load(itemVA) // GET reads header+value (one line here)
		}
	}
	return &Workload{Name: "mem$", Space: space, Accesses: tr.out, InstrsPerAccess: 10}
}

// buildMUMmer synthesizes the DNA aligner's access pattern (§6.2): binary
// searches over a large suffix array (pointer-chase-like, high TLB miss)
// interleaved with short sequential scans of the reference sequence.
// Building a true suffix tree is unnecessary for the address trace — the
// binary-search probe sequence over a sorted array reproduces the memory
// behaviour (documented substitution, DESIGN.md).
func buildMUMmer(p Params) *Workload {
	total := p.MumerBytes
	saBytes := total * 3 / 4
	refBytes := total - saBytes
	heapPages := int(total>>addr.PageShift) + 1024
	space := heapLayout(heapPages, p.Seed+3)
	ar := newArena(heapRegion(space))
	sa := ar.alloc(saBytes)
	ref := ar.alloc(refBytes)

	// Suffix-array entries are 32 bytes (position + LCP metadata), as in
	// enhanced suffix arrays; the trace needs only their addresses.
	const saStride = 32
	n := saBytes / saStride
	rng := rngFor(p, 4)
	tr := &tracer{max: p.TraceLen}
	for !tr.full() {
		// Binary search over the suffix array.
		lo, hi := uint64(0), n
		target := uint64(rng.Int63n(int64(n)))
		for lo < hi && !tr.full() {
			mid := (lo + hi) / 2
			tr.load(sa + addr.VA(mid*saStride))
			if mid < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		// Extend the match: short sequential scan of the reference.
		pos := uint64(rng.Int63n(int64(refBytes - 256)))
		for j := uint64(0); j < 4 && !tr.full(); j++ {
			tr.load(ref + addr.VA(pos+j*64))
		}
	}
	return &Workload{Name: "MUMr", Space: space, Accesses: tr.out, InstrsPerAccess: 6}
}
