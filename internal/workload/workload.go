// Package workload synthesizes the paper's evaluation workloads (§6.2):
// the six graphBIG kernels on a Kronecker graph, GUPS, a MUMmer-like
// sequence aligner, and a memcached-like key-value store. Each workload
// owns a virtual address space (built with internal/vas) and produces a
// deterministic memory-access trace whose addresses are the actual data
// structure elements the algorithm touches.
//
// Footprints are scaled down from the paper's testbed (75–124 GB) to fit a
// laptop-scale simulation while preserving the regime that drives the
// results: working sets far exceed the 8 MB L2-TLB reach and the L2/L3
// caches, so TLB and PWC miss rates land in the paper's reported ranges.
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"lvm/internal/addr"
	"lvm/internal/vas"
)

// Access is one memory reference of the trace.
type Access struct {
	VA addr.VA
	// Write marks stores (informational; the timing model treats loads
	// and stores alike).
	Write bool
}

// Workload bundles a layout and its access trace.
type Workload struct {
	Name string
	// Space is the process's virtual address space.
	Space *vas.AddressSpace
	// Accesses is the memory reference trace.
	Accesses []Access
	// InstrsPerAccess is the mean number of instructions per memory
	// reference (sets the compute/memory ratio of the core model).
	InstrsPerAccess int
}

// FootprintBytes returns the mapped memory size.
func (w *Workload) FootprintBytes() uint64 { return w.Space.FootprintBytes() }

// Window returns the zero-copy access slice [lo, hi) — the translation
// pipeline's batch view into the trace. The three-index form prevents an
// append through the window from reaching the trace beyond hi.
func (w *Workload) Window(lo, hi int) []Access { return w.Accesses[lo:hi:hi] }

// arena bump-allocates data structures inside a fully mapped region.
type arena struct {
	base addr.VA
	size uint64
	used uint64
}

func newArena(r *vas.Region) *arena {
	return &arena{base: addr.VAOf(r.Base), size: uint64(r.Span) << addr.PageShift}
}

// alloc reserves n bytes, 64-byte aligned, and returns the base VA.
func (a *arena) alloc(n uint64) addr.VA {
	a.used = (a.used + 63) &^ 63
	if a.used+n > a.size {
		panic(fmt.Sprintf("workload: arena overflow: %d + %d > %d", a.used, n, a.size))
	}
	va := a.base + addr.VA(a.used)
	a.used += n
	return va
}

// heapLayout builds a process layout with a fully mapped heap of the given
// size (the arrays live there) plus the usual small regions.
func heapLayout(heapPages int, seed int64) *vas.AddressSpace {
	cfg := vas.DefaultConfig()
	cfg.HeapPages = heapPages
	cfg.MmapRegions = 2
	cfg.MmapPages = 4096
	cfg.HoleFraction = 0.03
	cfg.MeanHoleRun = 3
	space := vas.Generate(cfg, seed)
	// The heap hosts the arrays: map it fully.
	for i := range space.Regions {
		if space.Regions[i].Kind == vas.Heap {
			r := &space.Regions[i]
			r.Mapped = r.Mapped[:0]
			for p := 0; p < r.Span; p++ {
				r.Mapped = append(r.Mapped, r.Base+addr.VPN(p))
			}
		}
	}
	return space
}

func heapRegion(s *vas.AddressSpace) *vas.Region {
	for i := range s.Regions {
		if s.Regions[i].Kind == vas.Heap {
			return &s.Regions[i]
		}
	}
	panic("workload: no heap region")
}

// Params scales workload construction.
type Params struct {
	// GraphScale is log2 of the Kronecker vertex count.
	GraphScale int
	// GraphDegree is the average out-degree.
	GraphDegree int
	// TraceLen caps the access trace length.
	TraceLen int
	// GUPSTableBytes sizes the GUPS update table.
	GUPSTableBytes uint64
	// MemcachedBytes sizes the key-value store (buckets + slabs).
	MemcachedBytes uint64
	// MumerBytes sizes the reference + suffix array.
	MumerBytes uint64
	Seed       int64
}

// DefaultParams is the laptop-scale configuration used by the benchmarks.
func DefaultParams() Params {
	return Params{
		GraphScale:     22, // 4M vertices, ~33M edges → ~1.1 GB footprint
		GraphDegree:    8,
		TraceLen:       1_000_000,
		GUPSTableBytes: 4 << 30,
		MemcachedBytes: 5 << 29, // 2.5 GB
		MumerBytes:     2 << 30,
		Seed:           42,
	}
}

// QuickParams is a smaller configuration for unit tests.
func QuickParams() Params {
	return Params{
		GraphScale:     14,
		GraphDegree:    8,
		TraceLen:       50_000,
		GUPSTableBytes: 16 << 20,
		MemcachedBytes: 24 << 20,
		MumerBytes:     16 << 20,
		Seed:           42,
	}
}

// SpeedupNames lists the nine Figure-9 workloads in paper order.
func SpeedupNames() []string {
	return []string{"bfs", "pr", "cc", "dc", "dfs", "sssp", "gups", "mem$", "MUMr"}
}

// graphCache shares one Kronecker graph across the six graph kernels.
var graphCache sync.Map // key: [2]int{scale, degree} -> *Graph

func sharedGraph(p Params) *Graph {
	key := [3]int64{int64(p.GraphScale), int64(p.GraphDegree), p.Seed}
	if g, ok := graphCache.Load(key); ok {
		return g.(*Graph)
	}
	g := Kronecker(p.GraphScale, p.GraphDegree, p.Seed)
	actual, _ := graphCache.LoadOrStore(key, g)
	return actual.(*Graph)
}

// ErrUnknown reports a workload name Build does not recognize; callers can
// test for it with errors.Is through any number of wrapping layers.
var ErrUnknown = errors.New("unknown workload")

// Build constructs a workload by name.
func Build(name string, p Params) (*Workload, error) {
	switch name {
	case "bfs", "dfs", "cc", "dc", "pr", "sssp":
		return buildGraph(name, p), nil
	case "gups":
		return buildGUPS(p), nil
	case "mem$", "memcached":
		return buildMemcached(p), nil
	case "MUMr", "mummer":
		return buildMUMmer(p), nil
	}
	return nil, fmt.Errorf("workload: %w %q", ErrUnknown, name)
}

// EstimateFootprintBytes predicts Build(name, p).FootprintBytes() without
// constructing the workload's data structures or access trace: it derives
// the heap size from the same formulas the builders use and generates only
// the (cheap) address-space layout. The estimate is exact for every known
// workload — the Kronecker generator emits exactly V·degree edges and the
// layout is a pure function of (pages, seed) — which is what lets shard
// partitions computed on different hosts, and `lvmbench -list` cost
// columns computed without any build, agree with the real footprints.
func EstimateFootprintBytes(name string, p Params) (uint64, error) {
	var heapPages int
	var seedOff int64
	switch name {
	case "bfs", "dfs", "cc", "dc", "pr", "sssp":
		v := uint64(1) << uint(p.GraphScale)
		e := v * uint64(p.GraphDegree)
		bytes := (v+1)*offStride + e*tgtStride + 2*v*propStride
		heapPages = int(bytes>>addr.PageShift) + 2048
		seedOff = 0
	case "gups":
		heapPages = int(p.GUPSTableBytes>>addr.PageShift) + 1024
		seedOff = 1
	case "mem$", "memcached":
		heapPages = int(p.MemcachedBytes>>addr.PageShift) + 1024
		seedOff = 2
	case "MUMr", "mummer":
		heapPages = int(p.MumerBytes>>addr.PageShift) + 1024
		seedOff = 3
	default:
		return 0, fmt.Errorf("workload: %w %q", ErrUnknown, name)
	}
	return heapLayout(heapPages, p.Seed+seedOff).FootprintBytes(), nil
}

// Fig2Profiles returns the Figure-2 study set: a layout configuration per
// application family, including the allocator variants. Every profile must
// exhibit gap-1 coverage ≥ 0.78 (§3.1).
func Fig2Profiles() map[string]vas.LayoutConfig {
	base := vas.DefaultConfig()
	mk := func(mod func(*vas.LayoutConfig)) vas.LayoutConfig {
		c := base
		mod(&c)
		return c
	}
	return map[string]vas.LayoutConfig{
		// Graph analytics: one giant heap, few holes.
		"graph": mk(func(c *vas.LayoutConfig) { c.HeapPages = 1 << 17; c.HoleFraction = 0.02 }),
		// Bioinformatics (MUMmer): large file-backed + heap.
		"bio": mk(func(c *vas.LayoutConfig) { c.MmapRegions = 2; c.MmapPages = 1 << 15; c.HoleFraction = 0.04 }),
		// Caching (memcached): slab allocator, very regular.
		"caching": mk(func(c *vas.LayoutConfig) { c.HeapPages = 1 << 17; c.HoleFraction = 0.01 }),
		// HPC (GUPS): one huge table.
		"hpc": mk(func(c *vas.LayoutConfig) { c.HeapPages = 1 << 17; c.HoleFraction = 0.005 }),
		// MongoDB: file-backed mappings dominate.
		"mongodb": mk(func(c *vas.LayoutConfig) { c.MmapRegions = 8; c.MmapPages = 1 << 14; c.HoleFraction = 0.08 }),
		// Finagle RPC (JVM): preallocated GC heap, almost no holes.
		"finagle": mk(func(c *vas.LayoutConfig) { c.HeapPages = 1 << 17; c.HoleFraction = 0.002 }),
		// hhvm (PHP): many arenas, more churn.
		"hhvm": mk(func(c *vas.LayoutConfig) {
			c.MmapRegions = 12
			c.MmapPages = 1 << 13
			c.HoleFraction = 0.15
			c.MeanHoleRun = 2
		}),
		// Kafka (JVM + mmapped logs).
		"kafka": mk(func(c *vas.LayoutConfig) { c.MmapRegions = 6; c.MmapPages = 1 << 14; c.HoleFraction = 0.03 }),
		// Meta production workloads 1-4: mixed profiles with the heaviest
		// fragmentation still ≥ the 78% floor.
		"workload1": mk(func(c *vas.LayoutConfig) { c.HoleFraction = 0.10; c.MeanHoleRun = 2 }),
		"workload2": mk(func(c *vas.LayoutConfig) { c.HoleFraction = 0.18; c.MeanHoleRun = 1 }),
		"workload3": mk(func(c *vas.LayoutConfig) { c.MmapRegions = 10; c.HoleFraction = 0.07 }),
		"workload4": mk(func(c *vas.LayoutConfig) { c.HeapPages = 1 << 16; c.HoleFraction = 0.12; c.MeanHoleRun = 3 }),
		// Allocator variants (§3.1: regularity practically the same).
		"graph-jemalloc": mk(func(c *vas.LayoutConfig) { c.Allocator = vas.Jemalloc; c.HoleFraction = 0.05 }),
		"graph-tcmalloc": mk(func(c *vas.LayoutConfig) { c.Allocator = vas.Tcmalloc; c.HoleFraction = 0.05 }),
	}
}

// rngFor derives a per-purpose RNG.
func rngFor(p Params, salt int64) *rand.Rand {
	return rand.New(rand.NewSource(p.Seed*1_000_003 + salt))
}
