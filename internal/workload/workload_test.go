package workload

import (
	"errors"
	"testing"

	"lvm/internal/addr"
	"lvm/internal/vas"
)

func TestKroneckerShape(t *testing.T) {
	g := Kronecker(10, 8, 1)
	if g.V != 1024 {
		t.Errorf("V = %d", g.V)
	}
	if g.E() != 1024*8 {
		t.Errorf("E = %d", g.E())
	}
	// CSR invariants.
	if g.Offsets[0] != 0 || g.Offsets[g.V] != uint64(g.E()) {
		t.Error("offsets endpoints wrong")
	}
	for i := 1; i <= g.V; i++ {
		if g.Offsets[i] < g.Offsets[i-1] {
			t.Fatal("offsets not monotone")
		}
	}
	for _, v := range g.Targets {
		if int(v) >= g.V {
			t.Fatal("target out of range")
		}
	}
}

func TestKroneckerSkewed(t *testing.T) {
	// RMAT graphs are power-law-ish: the max degree should far exceed the
	// average.
	g := Kronecker(12, 8, 2)
	maxDeg := 0
	for u := 0; u < g.V; u++ {
		if d := g.Degree(u); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 8*8 {
		t.Errorf("max degree %d too small for an RMAT graph", maxDeg)
	}
}

func TestKroneckerDeterministic(t *testing.T) {
	a := Kronecker(8, 4, 3)
	b := Kronecker(8, 4, 3)
	if a.E() != b.E() {
		t.Fatal("same seed, different graphs")
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			t.Fatal("same seed, different targets")
		}
	}
}

func TestAllWorkloadsBuild(t *testing.T) {
	p := QuickParams()
	for _, name := range SpeedupNames() {
		w, err := Build(name, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(w.Accesses) != p.TraceLen {
			t.Errorf("%s: trace length %d want %d", name, len(w.Accesses), p.TraceLen)
		}
		if w.InstrsPerAccess < 1 {
			t.Errorf("%s: instrs per access %d", name, w.InstrsPerAccess)
		}
		if w.FootprintBytes() == 0 {
			t.Errorf("%s: empty footprint", name)
		}
	}
}

// The estimate must be exact, not approximate: shard assignment partitions
// the run matrix by estimated cost on every participating host, and a host
// that builds the workload must land on the same partition as one that
// only estimates it.
func TestEstimateFootprintExact(t *testing.T) {
	p := QuickParams()
	for _, name := range SpeedupNames() {
		est, err := EstimateFootprintBytes(name, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		w, err := Build(name, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if est != w.FootprintBytes() {
			t.Errorf("%s: estimated %d bytes, built %d", name, est, w.FootprintBytes())
		}
	}
	if _, err := EstimateFootprintBytes("nope", p); !errors.Is(err, ErrUnknown) {
		t.Errorf("unknown workload: got %v, want ErrUnknown", err)
	}
}

func TestTracesTouchMappedPages(t *testing.T) {
	p := QuickParams()
	for _, name := range SpeedupNames() {
		w, err := Build(name, p)
		if err != nil {
			t.Fatal(err)
		}
		mapped := make(map[addr.VPN]bool)
		for _, r := range w.Space.Regions {
			for _, v := range r.Mapped {
				mapped[v] = true
			}
		}
		for i, a := range w.Accesses {
			if !mapped[addr.VPNOf(a.VA)] {
				t.Fatalf("%s: access %d to unmapped VPN %#x", name, i, uint64(addr.VPNOf(a.VA)))
			}
		}
	}
}

func TestTraceDeterminism(t *testing.T) {
	p := QuickParams()
	a, _ := Build("bfs", p)
	b, _ := Build("bfs", p)
	for i := range a.Accesses {
		if a.Accesses[i] != b.Accesses[i] {
			t.Fatal("same params, different traces")
		}
	}
}

func TestGUPSIsRandom(t *testing.T) {
	p := QuickParams()
	w, _ := Build("gups", p)
	// Most consecutive accesses must land on different pages (the
	// TLB-hostile property).
	samePage := 0
	for i := 1; i < len(w.Accesses); i++ {
		if addr.VPNOf(w.Accesses[i].VA) == addr.VPNOf(w.Accesses[i-1].VA) {
			samePage++
		}
	}
	if frac := float64(samePage) / float64(len(w.Accesses)); frac > 0.05 {
		t.Errorf("GUPS same-page fraction = %.3f, want ≈0", frac)
	}
}

func TestGraphTraceHasLocalityMix(t *testing.T) {
	p := QuickParams()
	w, _ := Build("bfs", p)
	sameLine := 0
	for i := 1; i < len(w.Accesses); i++ {
		if w.Accesses[i].VA/64 == w.Accesses[i-1].VA/64 {
			sameLine++
		}
	}
	frac := float64(sameLine) / float64(len(w.Accesses))
	// Graph traversal mixes sequential (offsets/targets) and random
	// (visited) accesses: some line locality, far from all.
	if frac < 0.005 || frac > 0.9 {
		t.Errorf("bfs same-line fraction = %.3f, expected a mix", frac)
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := Build("nope", QuickParams()); err == nil {
		t.Error("expected error")
	}
}

func TestFig2ProfilesCoverage(t *testing.T) {
	// §3.1: every profile must exhibit ≥78% gap-1 coverage.
	for name, cfg := range Fig2Profiles() {
		// Shrink for test speed while keeping the hole statistics.
		cfg.HeapPages = min(cfg.HeapPages, 1<<15)
		cfg.MmapPages = min(cfg.MmapPages, 1<<13)
		space := vas.Generate(cfg, 9)
		got := vas.GapCoverage(space.MappedVPNs())
		if got < 0.78 {
			t.Errorf("%s: gap coverage %.3f < 0.78", name, got)
		}
	}
}

func TestMemcachedSkewed(t *testing.T) {
	p := QuickParams()
	w, _ := Build("mem$", p)
	// Zipf popularity: the most frequent line should appear much more
	// often than the mean.
	counts := map[addr.VA]int{}
	for _, a := range w.Accesses {
		counts[a.VA/64]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	mean := float64(len(w.Accesses)) / float64(len(counts))
	if float64(maxCount) < mean*4 {
		t.Errorf("memcached popularity not skewed: max %d vs mean %.1f", maxCount, mean)
	}
}

func TestWritesPresent(t *testing.T) {
	p := QuickParams()
	for _, name := range []string{"gups", "mem$", "pr", "dc"} {
		w, _ := Build(name, p)
		writes := 0
		for _, a := range w.Accesses {
			if a.Write {
				writes++
			}
		}
		if writes == 0 {
			t.Errorf("%s: no writes in trace", name)
		}
	}
}
