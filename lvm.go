// Package lvm is a Go reproduction of "Learning to Walk: Architecting
// Learned Virtual Memory Translation" (MICRO 2025): a page table structure
// built on a learned index that locates page table entries with a single
// memory access in the common case.
//
// The package exposes three layers:
//
//   - The learned page table itself (BuildIndex / Index): a hierarchy of
//     Q44.20 fixed-point linear models over gapped page tables, with the
//     paper's cost model, insertion paths, and multi-page-size support.
//   - The operating-system layer (NewSystem / System): per-process address
//     spaces, physical memory with a buddy allocator, THP policy, and every
//     baseline page-table scheme the paper compares against (radix, elastic
//     cuckoo, ideal, FPT, ASAP, Midgard).
//   - The evaluation stack (Simulate, NewExperiments): the trace-driven
//     timing simulator and the harness that regenerates every table and
//     figure of the paper's evaluation.
//
// Quick start:
//
//	mem := lvm.NewPhysicalMemory(256 << 20)
//	ix, err := lvm.BuildIndex(mem, mappings, lvm.DefaultParams())
//	r := ix.Walk(vpn) // hardware-equivalent translation
package lvm

import (
	"lvm/internal/addr"
	"lvm/internal/core"
	"lvm/internal/phys"
	"lvm/internal/pte"
)

// Address-space types.
type (
	// VA is a virtual address.
	VA = addr.VA
	// PA is a physical address.
	PA = addr.PA
	// VPN is a virtual page number in 4 KB units.
	VPN = addr.VPN
	// PPN is a physical page number in 4 KB units.
	PPN = addr.PPN
	// PageSize selects a translation granularity.
	PageSize = addr.PageSize
	// Entry is an 8-byte page table entry.
	Entry = pte.Entry
)

// Page sizes.
const (
	Page4K = addr.Page4K
	Page2M = addr.Page2M
	Page1G = addr.Page1G
)

// NewEntry builds a present page table entry.
func NewEntry(ppn PPN, size PageSize) Entry { return pte.New(ppn, size) }

// Core learned-index types.
type (
	// Index is a per-process LVM learned index (paper §4).
	Index = core.Index
	// Mapping is one translation handed to the index.
	Mapping = core.Mapping
	// Params are LVM's tunable parameters (paper §5.1).
	Params = core.Params
	// WalkResult is the trace of one hardware walk.
	WalkResult = core.WalkResult
	// IndexStats are the maintenance statistics of §7.3.
	IndexStats = core.IndexStats
	// HWWalker is LVM's hardware page walker with its walk cache.
	HWWalker = core.HWWalker
)

// PhysicalMemory is simulated physical memory with a buddy allocator.
type PhysicalMemory = phys.Memory

// DefaultParams returns the paper's §5.1 configuration: cost weights
// x1=10, x2=5, x3=200, d_limit=3, ga_scale=1.3, 64 MB minimum insertion
// distance, C_err=3.
func DefaultParams() Params { return core.DefaultParams() }

// NewPhysicalMemory creates a simulated physical memory of the given size.
func NewPhysicalMemory(bytes uint64) *PhysicalMemory { return phys.New(bytes) }

// BuildIndex trains a learned page table over the mappings, allocating its
// gapped page tables and node arrays from mem (paper §4.3.1-§4.3.3).
func BuildIndex(mem *PhysicalMemory, mappings []Mapping, p Params) (*Index, error) {
	return core.Build(mem, mappings, p)
}

// NewHardwareWalker creates LVM's MMU-side walker with an LWC of the given
// size (Table 1: 16 entries).
func NewHardwareWalker(lwcEntries int) *HWWalker { return core.NewHWWalker(lwcEntries) }

// VPNOf returns the base-page VPN containing a virtual address.
func VPNOf(va VA) VPN { return addr.VPNOf(va) }

// VAOf returns the first virtual address of a VPN.
func VAOf(v VPN) VA { return addr.VAOf(v) }
