package lvm_test

import (
	"testing"

	"lvm"
)

// Public-API smoke tests: the facade must be usable exactly as the README
// shows.

func TestQuickstartFlow(t *testing.T) {
	mem := lvm.NewPhysicalMemory(64 << 20)
	var ms []lvm.Mapping
	for i := 0; i < 1000; i++ {
		ms = append(ms, lvm.Mapping{
			VPN:   lvm.VPN(0x1000 + i),
			Entry: lvm.NewEntry(lvm.PPN(0x2000+i), lvm.Page4K),
		})
	}
	ix, err := lvm.BuildIndex(mem, ms, lvm.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	r := ix.Walk(0x1234)
	if !r.Found || r.Entry.PPN() != lvm.PPN(0x2000+0x234) {
		t.Fatalf("walk failed: %+v", r)
	}
	if r.PTEAccesses != 1 {
		t.Errorf("not single-access: %d", r.PTEAccesses)
	}
	if ix.SizeBytes() > 256 {
		t.Errorf("index size %dB", ix.SizeBytes())
	}
	// Insert + free through the public surface.
	if err := ix.Insert(lvm.Mapping{VPN: 0x1000 + 1000, Entry: lvm.NewEntry(9, lvm.Page4K)}); err != nil {
		t.Fatal(err)
	}
	if !ix.Free(0x1000) {
		t.Error("free failed")
	}
}

func TestSystemFlow(t *testing.T) {
	cfg := lvm.DefaultLayout()
	cfg.HeapPages = 2048
	cfg.MmapRegions = 1
	cfg.MmapPages = 512
	space := lvm.GenerateAddressSpace(cfg, 7)
	mem := lvm.NewPhysicalMemory(128 << 20)
	sys := lvm.NewSystem(mem, lvm.SchemeLVM)
	p, err := sys.Launch(1, space, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.LvmIx == nil {
		t.Fatal("no index")
	}
	w := sys.Walker()
	for _, r := range space.Regions {
		for i := 0; i < len(r.Mapped); i += 113 {
			if out := w.Walk(1, r.Mapped[i]); !out.Found {
				t.Fatalf("VPN %#x not translated", uint64(r.Mapped[i]))
			}
		}
	}
}

func TestSimulateFlow(t *testing.T) {
	wp := lvm.QuickWorkloadParams()
	res, err := lvm.Simulate("bfs", lvm.SchemeLVM, false, wp, lvm.ScaledMachine())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Faults != 0 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestGapCoverageExposed(t *testing.T) {
	if got := lvm.GapCoverage([]lvm.VPN{1, 2, 3}); got != 1 {
		t.Errorf("coverage = %v", got)
	}
}

func TestWorkloadNames(t *testing.T) {
	if len(lvm.WorkloadNames()) != 9 {
		t.Errorf("want the nine Figure-9 workloads, got %v", lvm.WorkloadNames())
	}
}
