package lvm

import (
	"lvm/internal/experiments"
	"lvm/internal/oskernel"
	"lvm/internal/sim"
	"lvm/internal/vas"
	"lvm/internal/workload"
)

// OS and scheme layer.
type (
	// System is the OS layer: physical page allocation, page-table
	// construction and maintenance for one scheme, THP policy, ASLR
	// normalization.
	System = oskernel.System
	// Process is one launched address space.
	Process = oskernel.Process
	// Scheme selects a page-table structure.
	Scheme = oskernel.Scheme
	// AddressSpace is a process virtual-memory layout.
	AddressSpace = vas.AddressSpace
	// LayoutConfig drives synthetic layout generation.
	LayoutConfig = vas.LayoutConfig
)

// Page-table schemes.
const (
	SchemeRadix   = oskernel.SchemeRadix
	SchemeECPT    = oskernel.SchemeECPT
	SchemeLVM     = oskernel.SchemeLVM
	SchemeIdeal   = oskernel.SchemeIdeal
	SchemeFPT     = oskernel.SchemeFPT
	SchemeASAP    = oskernel.SchemeASAP
	SchemeMidgard = oskernel.SchemeMidgard
)

// NewSystem creates the OS layer for one scheme over a physical memory.
func NewSystem(mem *PhysicalMemory, scheme Scheme) *System {
	return oskernel.NewSystem(mem, scheme)
}

// GenerateAddressSpace builds a synthetic process layout (regions, ASLR,
// allocator hole patterns).
func GenerateAddressSpace(cfg LayoutConfig, seed int64) *AddressSpace {
	return vas.Generate(cfg, seed)
}

// DefaultLayout returns a memory-intensive server layout configuration.
func DefaultLayout() LayoutConfig { return vas.DefaultConfig() }

// GapCoverage computes the Figure-2 regularity metric over sorted VPNs.
func GapCoverage(vpns []VPN) float64 { return vas.GapCoverage(vpns) }

// Simulation layer.
type (
	// MachineConfig is the timing model configuration (Table 1).
	MachineConfig = sim.Config
	// CPU is one simulated core.
	CPU = sim.CPU
	// SimResult carries the metrics of one simulation.
	SimResult = sim.Result
	// Workload bundles an address space and its access trace.
	Workload = workload.Workload
	// WorkloadParams scales workload construction.
	WorkloadParams = workload.Params
)

// DefaultMachine returns the Table-1 machine model.
func DefaultMachine() MachineConfig { return sim.DefaultConfig() }

// ScaledMachine returns the proportionally scaled machine model the
// experiment harness uses (see sim.ScaledConfig for the scaling argument).
func ScaledMachine() MachineConfig { return sim.ScaledConfig() }

// NewCPU creates a simulated core bound to a scheme's hardware walker.
func NewCPU(cfg MachineConfig, sys *System) *CPU { return sim.New(cfg, sys.Walker()) }

// BuildWorkload constructs one of the paper's evaluation workloads
// ("bfs", "pr", "cc", "dc", "dfs", "sssp", "gups", "mem$", "MUMr").
func BuildWorkload(name string, p WorkloadParams) (*Workload, error) {
	return workload.Build(name, p)
}

// DefaultWorkloadParams returns the full-scale workload configuration.
func DefaultWorkloadParams() WorkloadParams { return workload.DefaultParams() }

// QuickWorkloadParams returns a small configuration for experimentation.
func QuickWorkloadParams() WorkloadParams { return workload.QuickParams() }

// WorkloadNames lists the nine Figure-9 workloads.
func WorkloadNames() []string { return workload.SpeedupNames() }

// Experiment harness.
type (
	// Experiments regenerates the paper's tables and figures.
	Experiments = experiments.Runner
	// ExperimentConfig sizes the experiment sweep.
	ExperimentConfig = experiments.Config
)

// NewExperiments creates the harness.
func NewExperiments(cfg ExperimentConfig) *Experiments { return experiments.NewRunner(cfg) }

// DefaultExperiments is the full-scale sweep configuration.
func DefaultExperiments() ExperimentConfig { return experiments.Default() }

// QuickExperiments is a reduced sweep for fast iteration.
func QuickExperiments() ExperimentConfig { return experiments.Quick() }

// Simulate is the one-call evaluation path: build the named workload,
// launch it under the scheme, and run the trace through the machine model.
func Simulate(name string, scheme Scheme, thp bool, wp WorkloadParams, mc MachineConfig) (SimResult, error) {
	w, err := workload.Build(name, wp)
	if err != nil {
		return SimResult{}, err
	}
	mem := NewPhysicalMemory(w.FootprintBytes() + w.FootprintBytes()/2 + (1 << 30))
	sys := oskernel.NewSystem(mem, scheme)
	if _, err := sys.Launch(1, w.Space, thp); err != nil {
		return SimResult{}, err
	}
	mc.Midgard = scheme == SchemeMidgard
	cpu := sim.New(mc, sys.Walker())
	return cpu.Run(1, w), nil
}
